package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"vdbscan"
	"vdbscan/internal/cliutil"
	"vdbscan/internal/dataio"
)

// ---- wire documents ----------------------------------------------------

// datasetDoc is the JSON shape of a dataset resource.
type datasetDoc struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Points     int    `json:"points"`  // covered by the installed index
	Staged     int    `json:"staged"`  // appended, awaiting re-freeze
	Version    int    `json:"version"` // index install version
	Index      string `json:"index"`   // eps-search substrate: rtree or grid
	Refreezing bool   `json:"refreezing"`
	Created    string `json:"created"`
}

// variantSpec is one (ε, minpts) pair in a job submission.
type variantSpec struct {
	Eps    float64 `json:"eps"`
	MinPts int     `json:"minpts"`
}

// jobRequest is the POST /v{1,2}/datasets/{id}/jobs body.
type jobRequest struct {
	Variants []variantSpec `json:"variants"`
	// TimeoutMS overrides the server's default job deadline (milliseconds).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Tiles overrides the server's tile-level parallelism for this job's
	// run (0 = server default/auto, 1 = untiled, >= 2 = tile target).
	// Labels are identical at any tile count; when coalescing merges jobs
	// the batch runs with the largest requested value.
	Tiles int `json:"tiles,omitempty"`
	// AllowApprox opts this single job into load shedding (the per-request
	// form of TenantConfig.AllowApprox): under queue pressure the job may
	// be answered by ρ-approximate DBSCAN, tagged "quality":"approx".
	AllowApprox bool `json:"allow_approx,omitempty"`
}

// variantDoc is one per-variant result inside a job document.
type variantDoc struct {
	Eps            float64 `json:"eps"`
	MinPts         int     `json:"minpts"`
	Clusters       int     `json:"clusters"`
	Noise          int     `json:"noise"`
	FractionReused float64 `json:"fraction_reused"`
	FromScratch    bool    `json:"from_scratch"`
	DurationMS     float64 `json:"duration_ms"`
}

// jobDoc is the JSON shape of a job resource. BatchJobs and BatchVariants
// expose the coalescing outcome: a job that shared its run reports
// batch_jobs > 1 and a union variant count covering every member.
type jobDoc struct {
	ID            string       `json:"id"`
	Dataset       string       `json:"dataset"`
	State         string       `json:"state"`
	Error         string       `json:"error,omitempty"`
	Batch         string       `json:"batch"`
	BatchJobs     int          `json:"batch_jobs"`
	BatchVariants int          `json:"batch_variants"`
	Created       string       `json:"created"`
	Started       string       `json:"started,omitempty"`
	Finished      string       `json:"finished,omitempty"`
	Results       []variantDoc `json:"results,omitempty"`
	// Quality tags degraded answers: "approx" on load-shed jobs, absent on
	// exact ones — so it never appears in pre-shedding response shapes.
	Quality string `json:"quality,omitempty"`
	// Tenant and Work are v2-only (left unset when rendering for /v1, so
	// the v1 documents stay byte-identical to the original surface). Work
	// appears once the job is done and is exactly what the quota ledger
	// charged: eps_searches + candidates_examined = charge.
	Tenant string      `json:"tenant,omitempty"`
	Work   *jobWorkDoc `json:"work,omitempty"`
}

// jobWorkDoc itemizes a finished job's metered work and its quota charge.
type jobWorkDoc struct {
	EpsSearches        int64 `json:"eps_searches"`
	CandidatesExamined int64 `json:"candidates_examined"`
	Charge             int64 `json:"charge"`
}

type errorDoc struct {
	Error string `json:"error"`
}

// ---- helpers -----------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Server) datasetDoc(d *dataset) datasetDoc {
	d.mu.Lock()
	defer d.mu.Unlock()
	return datasetDoc{
		ID:         d.id,
		Name:       d.name,
		Points:     len(d.points),
		Staged:     len(d.staged),
		Version:    d.version,
		Index:      d.kind.String(),
		Refreezing: d.refreezing,
		Created:    stamp(d.created),
	}
}

// jobDoc renders a job resource. v2 adds the tenant attribution and, once
// the job is done, the metered-work breakdown; v1 omits both so its
// documents stay byte-identical to the original surface.
func (s *Server) jobDoc(j *job, v2 bool) jobDoc {
	state, errMsg, started, finished, results := j.view()
	quality, work := j.outcomeMeta()
	members, union := j.batch.members()
	doc := jobDoc{
		ID:            j.id,
		Dataset:       j.datasetID,
		State:         state,
		Error:         errMsg,
		Batch:         j.batch.id,
		BatchJobs:     len(members),
		BatchVariants: len(union),
		Created:       stamp(j.created),
		Started:       stamp(started),
		Finished:      stamp(finished),
		Quality:       quality,
	}
	if v2 {
		if j.tenant != nil {
			doc.Tenant = j.tenant.id()
		}
		if state == stateDone {
			doc.Work = &jobWorkDoc{
				EpsSearches:        work.NeighborSearches,
				CandidatesExamined: work.CandidatesExamined,
				Charge:             workCharge(work.NeighborSearches, work.CandidatesExamined),
			}
		}
	}
	for _, o := range results {
		doc.Results = append(doc.Results, variantDoc{
			Eps:            o.Params.Eps,
			MinPts:         o.Params.MinPts,
			Clusters:       o.Clusters,
			Noise:          o.Noise,
			FractionReused: o.FractionReused,
			FromScratch:    o.FromScratch,
			DurationMS:     float64(o.Duration) / float64(time.Millisecond),
		})
	}
	return doc
}

// retryAfterSeconds is the backpressure hint on 429 and 503 responses:
// roughly one batching window (the soonest the backlog can shrink),
// rounded up — truncating 1.5s to 1 invites clients back before the
// window has closed — and never less than a second, since Retry-After: 0
// tells well-behaved clients to hammer the server in a tight loop.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.cfg.BatchWindow + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeDraining rejects a request during graceful drain: 503 with a
// Retry-After hint, so load balancers and retrying clients back off to
// another replica instead of treating the drain as a hard failure.
func (s *Server) writeDraining(w http.ResponseWriter, r *http.Request) {
	s.apiErrRetry(w, r, http.StatusServiceUnavailable, errCodeDraining,
		s.retryAfterSeconds(), "server is draining")
}

// lookupJob resolves {id} to a job owned by the requesting tenant. On
// failure it writes the response itself: 410 Gone when the tenant's own
// finished job was TTL-evicted, 404 otherwise. A job owned by another
// tenant — live or evicted — is indistinguishable from one that never
// existed, so neither the store nor the tombstones leak foreign job IDs.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	tn := s.tenantFrom(r.Context())
	if j, ok := s.jobs.get(id); ok && j.tenant == tn {
		return j, true
	}
	if owner, ok := s.jobs.evictedOwner(id); ok && owner == tn {
		s.apiErr(w, r, http.StatusGone, errCodeGone,
			"job %q has been evicted (result TTL expired)", id)
		return nil, false
	}
	s.apiErr(w, r, http.StatusNotFound, errCodeNotFound, "no job %q", id)
	return nil, false
}

// readPointsCSV parses a CSV request body ("x,y" rows, optional "# key:
// value" header) into points, enforcing MaxBodyBytes.
func (s *Server) readPointsCSV(w http.ResponseWriter, r *http.Request) ([]vdbscan.Point, string, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ds, err := dataio.ReadCSV(body)
	if err != nil {
		return nil, "", err
	}
	return ds.Points, ds.Name, nil
}

// ---- dataset handlers --------------------------------------------------

func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeDraining(w, r)
		return
	}
	points, csvName, err := s.readPointsCSV(w, r)
	if err != nil {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "parse dataset: %v", err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" && csvName != "unnamed" {
		name = csvName
	}
	leafR := 0
	if v := r.URL.Query().Get("r"); v != "" {
		leafR, err = strconv.Atoi(v)
		if err != nil || leafR < 0 {
			s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "bad r parameter %q", v)
			return
		}
	}
	kind := s.cfg.IndexKind
	if v := r.URL.Query().Get("index"); v != "" {
		kind, err = cliutil.ParseIndexKind(v)
		if err != nil {
			s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest,
				"bad index parameter %q (want rtree or grid)", v)
			return
		}
	}
	d, err := s.registry.create(name, points, leafR, kind)
	if err != nil {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "%v", err)
		return
	}
	s.ctrs.datasets.Add(1)
	s.log.Info("dataset created",
		"req", requestID(r.Context()), "dataset", d.id, "name", d.name,
		"points", len(points), "index", d.kind.String())
	writeJSON(w, http.StatusCreated, s.datasetDoc(d))
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	docs := []datasetDoc{}
	for _, d := range s.registry.list() {
		docs = append(docs, s.datasetDoc(d))
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": docs})
}

func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		s.apiErr(w, r, http.StatusNotFound, errCodeNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.datasetDoc(d))
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.registry.delete(id); err {
	case nil:
		w.WriteHeader(http.StatusNoContent)
	case errRefreezing:
		// Racing the background re-freeze: the install in flight is writing
		// this dataset's snapshot, so deletion now would corrupt or resurrect
		// it. Explicit conflict, retryable once the install lands.
		s.apiErrRetry(w, r, http.StatusConflict, errCodeConflict, s.retryAfterSeconds(),
			"dataset %q is re-freezing; retry after the install completes", id)
	default:
		s.apiErr(w, r, http.StatusNotFound, errCodeNotFound, "no dataset %q", id)
	}
}

func (s *Server) handleDatasetAppend(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeDraining(w, r)
		return
	}
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		s.apiErr(w, r, http.StatusNotFound, errCodeNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	points, _, err := s.readPointsCSV(w, r)
	if err != nil {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "parse points: %v", err)
		return
	}
	if len(points) == 0 {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "no points in body")
		return
	}
	staged, refreezing, err := s.registry.append(d, points, &s.ctrs)
	if err != nil {
		// Lost the race with a concurrent delete after the registry lookup.
		s.apiErr(w, r, http.StatusConflict, errCodeConflict,
			"dataset %q was deleted concurrently; points not staged", d.id)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"dataset":    d.id,
		"staged":     staged,
		"refreezing": refreezing,
	})
}

// ---- job handlers ------------------------------------------------------

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	tn := s.tenantFrom(r.Context())
	d, ok := s.registry.get(r.PathValue("id"))
	if !ok {
		s.apiErr(w, r, http.StatusNotFound, errCodeNotFound, "no dataset %q", r.PathValue("id"))
		return
	}
	var req jobRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "parse job request: %v", err)
		return
	}
	if len(req.Variants) == 0 {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "job has no variants")
		return
	}
	params := make([]vdbscan.Params, len(req.Variants))
	for i, v := range req.Variants {
		if v.Eps <= 0 || v.MinPts <= 0 {
			s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest,
				"variant %d: eps and minpts must be positive (got eps=%g minpts=%d)",
				i, v.Eps, v.MinPts)
			return
		}
		params[i] = vdbscan.Params{Eps: v.Eps, MinPts: v.MinPts}
	}
	timeout := s.cfg.JobTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if req.Tiles < 0 {
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "tiles must be >= 0 (got %d)", req.Tiles)
		return
	}

	// Tenant admission gates, checked before the queue-depth gate so a
	// capped tenant cannot starve others out of queue slots it would not
	// be allowed to use.
	if tn.overQuota() {
		s.mx.tenantRejected.With(tn.id(), "quota").Inc()
		s.apiErrRetry(w, r, http.StatusTooManyRequests, errCodeQuotaExhausted, s.retryAfterSeconds(),
			"tenant %s has exhausted its work quota (%d of %d units charged)",
			tn.id(), tn.charged.Load(), tn.cfg.WorkQuota)
		return
	}
	if tn.atJobCap() {
		s.mx.tenantRejected.With(tn.id(), "concurrency").Inc()
		s.apiErrRetry(w, r, http.StatusTooManyRequests, errCodeRateLimited, s.retryAfterSeconds(),
			"tenant %s is at its concurrent-jobs cap (%d live)",
			tn.id(), tn.cfg.MaxConcurrentJobs)
		return
	}

	j := s.jobs.new(tn, d.id, params, timeout)
	j.tiles = req.Tiles
	j.approx = s.shouldShed(tn, req.AllowApprox)
	j.events.mx = s.mx // safe: no frame published before admit
	if err := s.admit(j); err != nil {
		switch err {
		case errQueueFull:
			s.log.Warn("job rejected: queue full",
				"req", requestID(r.Context()), "dataset", d.id, "tenant", tn.id(),
				"queued", s.queueDepth())
			s.mx.tenantRejected.With(tn.id(), "queue").Inc()
			s.apiErrRetry(w, r, http.StatusTooManyRequests, errCodeQueueFull, s.retryAfterSeconds(),
				"job queue is full (%d queued)", s.queueDepth())
		case errDraining:
			s.writeDraining(w, r)
		default:
			s.apiErr(w, r, http.StatusInternalServerError, errCodeInternal, "%v", err)
		}
		return
	}
	if j.approx {
		tn.jobsShed.Add(1)
		s.mx.jobsShed.With(tn.id()).Inc()
	}
	s.jobs.put(j)
	s.armWatchdog(j)
	s.log.Info("job accepted",
		"req", requestID(r.Context()), "job", j.id, "dataset", d.id, "tenant", tn.id(),
		"batch", j.batch.id, "variants", len(params), "timeout", timeout,
		"approx", j.approx)
	prefix := "/v1"
	if isV2(r) {
		prefix = "/v2"
	}
	w.Header().Set("Location", prefix+"/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.jobDoc(j, isV2(r)))
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	tn := s.tenantFrom(r.Context())
	docs := []jobDoc{}
	for _, j := range s.jobs.list() {
		// Hard tenant isolation: a tenant's listing contains its own jobs
		// and nothing else, on both API versions.
		if j.tenant != tn {
			continue
		}
		docs = append(docs, s.jobDoc(j, isV2(r)))
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": docs})
}

// handleJobGet returns the job document; with ?wait=<duration> it long-polls
// until the job turns terminal or the wait (capped at DefaultMaxLongPollWait)
// elapses, whichever is first.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		wait, err := time.ParseDuration(waitStr)
		if err != nil {
			s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		if wait > DefaultMaxLongPollWait {
			wait = DefaultMaxLongPollWait
		}
		if wait > 0 {
			t := time.NewTimer(wait)
			defer t.Stop()
			select {
			case <-j.done:
			case <-t.C:
			case <-r.Context().Done():
				return
			}
		}
	}
	writeJSON(w, http.StatusOK, s.jobDoc(j, isV2(r)))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	s.abandon(j, stateCanceled, "canceled by client")
	writeJSON(w, http.StatusOK, s.jobDoc(j, isV2(r)))
}

// handleJobLabels streams one variant's labels as "index,label" CSV (the
// dataio.WriteLabelsCSV format, diffable against the CLI's output).
func (s *Server) handleJobLabels(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	variant := 0
	if v := r.URL.Query().Get("variant"); v != "" {
		var err error
		variant, err = strconv.Atoi(v)
		if err != nil {
			s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "bad variant %q", v)
			return
		}
	}
	o, ok := j.outcome(variant)
	if !ok {
		state, errMsg, _, _, _ := j.view()
		if state != stateDone {
			s.apiErr(w, r, http.StatusConflict, errCodeConflict,
				"job %s is %s (%s); labels require state done", j.id, state, errMsg)
		} else {
			s.apiErr(w, r, http.StatusNotFound, errCodeNotFound,
				"job %s has no variant %d", j.id, variant)
		}
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	dataio.WriteLabelsCSV(w, o.clustering) //nolint:errcheck // client gone
}

// handleJobTrace serves the execution trace of the batch run that carried
// the job: Chrome trace-event JSON by default, the plain-text timeline with
// ?format=text. One batch means one trace — coalesced jobs share it.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	chrome, text, ok := j.batch.trace()
	if !ok {
		s.apiErr(w, r, http.StatusConflict, errCodeConflict, "job %s has not run yet; no trace", j.id)
		return
	}
	switch f := r.URL.Query().Get("format"); f {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		w.Write(chrome) //nolint:errcheck // client gone
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(text) //nolint:errcheck // client gone
	default:
		s.apiErr(w, r, http.StatusBadRequest, errCodeBadRequest, "unknown trace format %q", f)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime":   time.Since(s.start).Round(time.Millisecond).String(),
		"queued":   s.queueDepth(),
		"datasets": s.registry.len(),
	})
}
