package server

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// drainAndStop gracefully shuts one generation of the server down.
func drainAndStop(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s.Close()
	ts.Close()
}

// startGeneration launches a server over dir without registering cleanup —
// restart tests stop generations explicitly (or abandon them, to simulate
// a crash).
func startGeneration(t *testing.T, cfg Config) (*Server, *httptest.Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	return s, ts, &testClient{t: t, base: ts.URL}
}

// TestWarmRestartServesIdenticalLabels is the restart exactness bar: a
// relaunch over the same data dir must restore every dataset from its
// mmap'd snapshot — zero re-freezes, zero re-uploads — and serve labels
// byte-for-byte identical to the first generation's.
func TestWarmRestartServesIdenticalLabels(t *testing.T) {
	dir := t.TempDir()
	jobBody := `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4}]}`

	s1, ts1, c1 := startGeneration(t, Config{Threads: 1, DataDir: dir})
	c1.doJSON("POST", "/v1/datasets?name=tec", pointsCSV(t, testPoints(t, 3000)), http.StatusCreated)
	sub := c1.submitJob("d1", jobBody, http.StatusAccepted)
	c1.waitDone(sub["id"].(string))
	code, _, labels1 := c1.do("GET", "/v1/jobs/"+sub["id"].(string)+"/labels?variant=0", nil)
	if code != http.StatusOK {
		t.Fatalf("labels gen1 = %d", code)
	}
	drainAndStop(t, s1, ts1)

	s2, ts2, c2 := startGeneration(t, Config{Threads: 1, DataDir: dir})
	defer drainAndStop(t, s2, ts2)

	// The dataset is back without an upload, same id, full point count.
	doc := c2.doJSON("GET", "/v1/datasets/d1", nil, http.StatusOK)
	if doc["points"] != float64(3000) || doc["name"] != "tec" {
		t.Fatalf("restored dataset doc: %v", doc)
	}

	sub2 := c2.submitJob("d1", jobBody, http.StatusAccepted)
	c2.waitDone(sub2["id"].(string))
	code, _, labels2 := c2.do("GET", "/v1/jobs/"+sub2["id"].(string)+"/labels?variant=0", nil)
	if code != http.StatusOK {
		t.Fatalf("labels gen2 = %d", code)
	}
	if !bytes.Equal(labels1, labels2) {
		t.Fatalf("labels diverged across restart:\ngen1: %.120q\ngen2: %.120q", labels1, labels2)
	}

	// Warm start means warm: the first job ran against the mapped snapshot,
	// no re-freeze happened.
	if got := s2.ctrs.refreezes.Load(); got != 0 {
		t.Fatalf("warm restart performed %d re-freezes, want 0", got)
	}

	// Id allocation resumed above the restored dataset: a fresh upload must
	// not shadow d1's directory.
	up := c2.doJSON("POST", "/v1/datasets?name=more", pointsCSV(t, testPoints(t, 500)), http.StatusCreated)
	if up["id"] != "d2" {
		t.Fatalf("post-restart upload id = %v, want d2", up["id"])
	}
}

// TestRestartReplaysWAL pins the append durability story: acknowledged
// appends survive an unclean stop (no drain, no final re-freeze) via WAL
// replay, and the eventual fold produces the same labels as a process
// that never crashed.
func TestRestartReplaysWAL(t *testing.T) {
	dir := t.TempDir()
	base := testPoints(t, 1500)
	extra := testPoints(t, 2500)[1500:] // disjoint tail of the same distribution
	jobBody := `{"variants":[{"eps":3,"minpts":4}]}`

	// Reference: one process sees base, appends extra, folds, clusters.
	refDir := t.TempDir()
	r1, rts1, rc := startGeneration(t, Config{Threads: 1, DataDir: refDir, RefreezePoints: 1 << 20})
	rc.doJSON("POST", "/v1/datasets", pointsCSV(t, base), http.StatusCreated)
	rc.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, extra), http.StatusAccepted)
	r1.registry.flushRefreezes() // fold staged appends now
	sub := rc.submitJob("d1", jobBody, http.StatusAccepted)
	rc.waitDone(sub["id"].(string))
	_, _, wantLabels := rc.do("GET", "/v1/jobs/"+sub["id"].(string)+"/labels?variant=0", nil)
	drainAndStop(t, r1, rts1)

	// Crashing generation: upload, append (acknowledged, so WAL-durable),
	// then stop WITHOUT draining — staged points never fold, the snapshot
	// still covers only base.
	s1, ts1, c1 := startGeneration(t, Config{Threads: 1, DataDir: dir, RefreezePoints: 1 << 20})
	c1.doJSON("POST", "/v1/datasets", pointsCSV(t, base), http.StatusCreated)
	c1.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, extra), http.StatusAccepted)
	s1.Close() // abrupt: no Drain, no flush
	ts1.Close()

	s2, ts2, c2 := startGeneration(t, Config{Threads: 1, DataDir: dir, RefreezePoints: 1 << 20})
	defer drainAndStop(t, s2, ts2)
	d, ok := s2.registry.get("d1")
	if !ok {
		t.Fatalf("dataset not restored")
	}
	d.mu.Lock()
	staged := len(d.staged)
	d.mu.Unlock()
	if staged != len(extra) {
		t.Fatalf("WAL replay staged %d points, want %d", staged, len(extra))
	}
	s2.registry.flushRefreezes()
	sub2 := c2.submitJob("d1", jobBody, http.StatusAccepted)
	c2.waitDone(sub2["id"].(string))
	_, _, gotLabels := c2.do("GET", "/v1/jobs/"+sub2["id"].(string)+"/labels?variant=0", nil)
	if !bytes.Equal(wantLabels, gotLabels) {
		t.Fatalf("labels after crash+replay diverged from uncrashed run")
	}
}

// TestRestartDropsTornWALTail simulates a crash mid-append: a torn final
// record must be dropped, every record before it kept.
func TestRestartDropsTornWALTail(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, c1 := startGeneration(t, Config{Threads: 1, DataDir: dir, RefreezePoints: 1 << 20})
	c1.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 600)), http.StatusCreated)
	full := testPoints(t, 700)
	c1.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, full[600:650]), http.StatusAccepted)
	c1.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, full[650:700]), http.StatusAccepted)
	s1.Close()
	ts1.Close()

	// Tear the middle of the second record off the WAL.
	wal := filepath.Join(dir, "d1", "wal.2")
	img, err := os.ReadFile(wal)
	if err != nil {
		t.Fatalf("wal missing: %v", err)
	}
	if err := os.WriteFile(wal, img[:len(img)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2, _ := startGeneration(t, Config{Threads: 1, DataDir: dir})
	defer drainAndStop(t, s2, ts2)
	d, ok := s2.registry.get("d1")
	if !ok {
		t.Fatalf("dataset not restored")
	}
	d.mu.Lock()
	staged := len(d.staged)
	d.mu.Unlock()
	if staged != 50 {
		t.Fatalf("staged %d points after torn tail, want the 50 from the intact record", staged)
	}
}

// TestRestartSkipsCorruptSnapshot: a damaged dataset directory must not
// take the server down — it is skipped with a log line, and uploads keep
// working.
func TestRestartSkipsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, c1 := startGeneration(t, Config{Threads: 1, DataDir: dir})
	c1.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 800)), http.StatusCreated)
	drainAndStop(t, s1, ts1)

	snap := filepath.Join(dir, "d1", "snapshot")
	img, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0xff
	if err := os.WriteFile(snap, img, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2, c2 := startGeneration(t, Config{Threads: 1, DataDir: dir})
	defer drainAndStop(t, s2, ts2)
	if got := s2.registry.len(); got != 0 {
		t.Fatalf("corrupt dataset restored (%d live)", got)
	}
	// The server still serves; the damaged id is not resurrected for new
	// uploads only if the directory scan advanced the sequence — it did
	// not (the dataset was skipped), so a fresh upload may reuse d1. What
	// matters is that the upload path works and re-persists cleanly.
	doc := c2.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 300)), http.StatusCreated)
	id, _ := doc["id"].(string)
	if !strings.HasPrefix(id, "d") {
		t.Fatalf("upload after corrupt skip: %v", doc)
	}
}

// TestDeleteRemovesDatasetDir: deleting a dataset removes its durable
// form, so a restart does not resurrect it.
func TestDeleteRemovesDatasetDir(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, c1 := startGeneration(t, Config{Threads: 1, DataDir: dir})
	c1.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 400)), http.StatusCreated)
	if _, err := os.Stat(filepath.Join(dir, "d1", "snapshot")); err != nil {
		t.Fatalf("snapshot not written at upload: %v", err)
	}
	if code, _, body := c1.do("DELETE", "/v1/datasets/d1", nil); code != http.StatusNoContent {
		t.Fatalf("delete = %d: %s", code, body)
	}
	if _, err := os.Stat(filepath.Join(dir, "d1")); !os.IsNotExist(err) {
		t.Fatalf("dataset dir survived delete: %v", err)
	}
	drainAndStop(t, s1, ts1)

	s2, ts2, _ := startGeneration(t, Config{Threads: 1, DataDir: dir})
	defer drainAndStop(t, s2, ts2)
	if got := s2.registry.len(); got != 0 {
		t.Fatalf("deleted dataset resurrected (%d live)", got)
	}
}
