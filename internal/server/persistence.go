package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"vdbscan"
	"vdbscan/internal/persist"
)

// Disk layout under Config.DataDir — one directory per dataset:
//
//	<DataDir>/<id>/manifest.json   identity: id, name, created, r, kind
//	<DataDir>/<id>/snapshot        page-aligned frozen-index image
//	<DataDir>/<id>/wal.<seq>       appends staged after snapshot <seq> was cut
//
// The snapshot's Sequence field is the highest WAL segment folded into it;
// on load, segments above it replay into the staged backlog. Segment
// rotation happens inside the same critical section that captures a
// re-freeze's input, so a segment's contents are exactly one re-freeze's
// staged points and the fold/replay boundary can never split a record.
//
// Persistence is strictly additive to the in-memory registry: with no
// DataDir every path below is a no-op, and any persistence failure is
// logged and degrades the dataset to memory-only rather than failing the
// request that triggered it.

// persistence ops reported through registry.onPersist.
const (
	persistOpWrite     = "write"
	persistOpLoad      = "load"
	persistOpWALReplay = "wal_replay"
)

// manifest is the identity block of one persisted dataset. The index
// geometry (r, kind) rides along so a re-freeze after restart rebuilds
// with the same layout the uploader chose.
type manifest struct {
	ID      string    `json:"id"`
	Name    string    `json:"name"`
	Created time.Time `json:"created"`
	R       int       `json:"r"`
	Kind    int       `json:"kind"`
}

func (g *registry) datasetDir(id string) string {
	return filepath.Join(g.cfg.DataDir, id)
}

// persistCreate gives a freshly created dataset its on-disk form: a
// directory, a manifest, and a synchronous initial snapshot. On any
// failure the dataset stays memory-only (d.dir empty) and the error is
// logged — an upload should not fail because the disk is unhappy.
func (g *registry) persistCreate(d *dataset) {
	if g.cfg.DataDir == "" {
		return
	}
	dir := g.datasetDir(d.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		g.log.Warn("dataset persistence disabled", "dataset", d.id, "err", err)
		return
	}
	mf, err := json.Marshal(manifest{
		ID: d.id, Name: d.name, Created: d.created, R: d.r, Kind: int(d.kind),
	})
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "manifest.json"), mf, 0o644)
	}
	if err == nil {
		began := time.Now()
		err = d.index.SaveSnapshot(filepath.Join(dir, "snapshot"), 1)
		if err == nil && g.onPersist != nil {
			g.onPersist(d, persistOpWrite, time.Since(began))
		}
	}
	if err != nil {
		g.log.Warn("dataset persistence disabled", "dataset", d.id, "err", err)
		os.RemoveAll(dir)
		return
	}
	d.dir = dir
	d.walSeq = 2 // segment 1 is, by definition, folded into the snapshot
}

// walAppend logs freshly staged points. Called with d.mu held, which
// orders WAL records identically to d.staged and excludes rotation.
func (g *registry) walAppend(d *dataset, pts []vdbscan.Point) {
	if d.dir == "" {
		return
	}
	if d.wal == nil {
		w, err := persist.OpenWAL(d.walPath(d.walSeq))
		if err != nil {
			g.log.Warn("wal open failed; appends to this dataset are memory-only until the next re-freeze",
				"dataset", d.id, "err", err)
			return
		}
		d.wal = w
	}
	if err := d.wal.Append(pts); err != nil {
		g.log.Warn("wal append failed", "dataset", d.id, "err", err)
	}
}

func (d *dataset) walPath(seq int) string {
	return filepath.Join(d.dir, fmt.Sprintf("wal.%d", seq))
}

// rotateWAL closes the current segment and opens the next epoch. Called
// with d.mu held, in the same critical section that captures a re-freeze's
// input, so the closed segment holds exactly the captured staged points.
// Returns the sequence the pending snapshot will fold (0 = not persisted).
func (g *registry) rotateWAL(d *dataset) (folded int) {
	if d.dir == "" {
		return 0
	}
	if d.wal != nil {
		if err := d.wal.Close(); err != nil {
			g.log.Warn("wal close failed", "dataset", d.id, "err", err)
		}
		d.wal = nil
	}
	folded = d.walSeq
	d.walSeq++
	return folded
}

// persistInstall makes an installed re-freeze durable: snapshot the new
// index under the folded sequence, then retire every segment it covers.
// Runs off d.mu (snapshotting is the expensive part); the per-refreeze
// serialization of the caller is its mutual exclusion.
func (g *registry) persistInstall(d *dataset, idx *vdbscan.Index, folded int) {
	if d.dir == "" || folded == 0 {
		return
	}
	began := time.Now()
	if err := idx.SaveSnapshot(filepath.Join(d.dir, "snapshot"), uint64(folded)); err != nil {
		// The old snapshot is still in place and the folded segments are
		// still on disk, so a restart replays its way back to this state.
		g.log.Warn("snapshot write failed; previous generation retained",
			"dataset", d.id, "err", err)
		return
	}
	if g.onPersist != nil {
		g.onPersist(d, persistOpWrite, time.Since(began))
	}
	for seq := folded; seq >= 1; seq-- {
		p := d.walPath(seq)
		if err := os.Remove(p); err != nil {
			if os.IsNotExist(err) {
				break // older segments were already retired
			}
			g.log.Warn("wal retire failed", "dataset", d.id, "segment", seq, "err", err)
		}
	}
}

// persistDelete removes a deleted dataset's directory. Called with d.mu
// held (delete marks the dataset under the same lock).
func (g *registry) persistDelete(d *dataset) {
	if d.dir == "" {
		return
	}
	if d.wal != nil {
		d.wal.Close()
		d.wal = nil
	}
	if err := os.RemoveAll(d.dir); err != nil {
		g.log.Warn("dataset directory removal failed", "dataset", d.id, "err", err)
	}
	d.dir = ""
}

// loadAll scans DataDir and restores every readable dataset: snapshot
// mapped, WAL backlog replayed into the staged set, id sequence resumed
// above the highest restored id. Corrupt or half-written entries are
// logged and skipped — the server always comes up; the fallback for a
// damaged dataset is re-upload (or the staged replay of an older
// snapshot generation, which the retire order guarantees is present).
func (g *registry) loadAll() {
	if g.cfg.DataDir == "" {
		return
	}
	ents, err := os.ReadDir(g.cfg.DataDir)
	if err != nil {
		if !os.IsNotExist(err) {
			g.log.Warn("data dir scan failed", "dir", g.cfg.DataDir, "err", err)
		}
		return
	}
	maxID := int64(0)
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		d, err := g.loadDataset(g.datasetDir(ent.Name()))
		if err != nil {
			g.log.Warn("dataset restore skipped", "entry", ent.Name(), "err", err)
			continue
		}
		g.mu.Lock()
		g.m[d.id] = d
		g.mu.Unlock()
		if n, err := strconv.ParseInt(strings.TrimPrefix(d.id, "d"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
		g.log.Info("dataset restored",
			"dataset", d.id, "points", len(d.points), "staged", len(d.staged))
	}
	// Resume id allocation above every restored dataset so a new upload
	// can never collide with (and silently shadow) a restored directory.
	for {
		cur := g.seq.Load()
		if cur >= maxID || g.seq.CompareAndSwap(cur, maxID) {
			return
		}
	}
}

// loadDataset restores one dataset directory: manifest, mapped snapshot,
// WAL replay.
func (g *registry) loadDataset(dir string) (*dataset, error) {
	mf, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	var man manifest
	if err := json.Unmarshal(mf, &man); err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	if man.ID == "" || man.ID != filepath.Base(dir) {
		return nil, fmt.Errorf("manifest id %q does not match directory", man.ID)
	}

	began := time.Now()
	idx, info, err := vdbscan.LoadSnapshot(filepath.Join(dir, "snapshot"))
	if err != nil {
		return nil, err
	}
	d := &dataset{
		id:      man.ID,
		name:    man.Name,
		created: man.Created,
		r:       man.R,
		kind:    vdbscan.IndexKind(man.Kind),
		points:  idx.Points(),
		index:   idx,
		version: 1,
		dir:     dir,
		walSeq:  int(info.Sequence) + 1,
	}
	if g.onPersist != nil {
		g.onPersist(d, persistOpLoad, time.Since(began))
	}

	began = time.Now()
	staged, walSeq, err := g.replayWALs(d, int(info.Sequence))
	if err != nil {
		return nil, err
	}
	d.staged = staged
	if walSeq > d.walSeq {
		d.walSeq = walSeq
	}
	if g.onPersist != nil {
		g.onPersist(d, persistOpWALReplay, time.Since(began))
	}
	return d, nil
}

// replayWALs replays every segment above folded, in sequence order, and
// returns the staged backlog plus the highest segment seen. A partial
// tail — the normal residue of a crash mid-append — keeps the valid
// prefix, rewrites the segment to just that prefix (so the next append
// lands on a clean tail), and stops: nothing after a torn record is
// trusted.
func (g *registry) replayWALs(d *dataset, folded int) ([]vdbscan.Point, int, error) {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, 0, err
	}
	var seqs []int
	for _, ent := range ents {
		rest, ok := strings.CutPrefix(ent.Name(), "wal.")
		if !ok {
			continue
		}
		seq, err := strconv.Atoi(rest)
		if err != nil || seq <= folded {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)

	var staged []vdbscan.Point
	maxSeq := 0
	for _, seq := range seqs {
		path := d.walPath(seq)
		pts, err := persist.ReplayWAL(path)
		staged = append(staged, pts...)
		maxSeq = seq
		if err != nil {
			if !errors.Is(err, persist.ErrWALPartial) {
				return nil, 0, err
			}
			g.log.Warn("wal tail dropped (crash residue)",
				"dataset", d.id, "segment", seq, "points_kept", len(pts))
			if err := rewriteWAL(path, pts); err != nil {
				return nil, 0, fmt.Errorf("wal rewrite: %w", err)
			}
			break
		}
	}
	return staged, maxSeq, nil
}

// rewriteWAL atomically replaces the segment at path with one holding
// exactly pts.
func rewriteWAL(path string, pts []vdbscan.Point) error {
	tmp := path + ".rewrite"
	w, err := persist.OpenWAL(tmp)
	if err != nil {
		return err
	}
	if err := w.Append(pts); err != nil {
		w.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
