package server

import (
	"bufio"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainOne receives one frame or fails after a timeout.
func drainOne(t *testing.T, sub *subscriber) (eventFrame, bool) {
	t.Helper()
	select {
	case f, ok := <-sub.ch:
		return f, ok
	case <-time.After(5 * time.Second):
		t.Fatal("no frame within 5s")
		return eventFrame{}, false
	}
}

// TestStreamSnapshotReplay: a subscriber joining mid-job immediately
// receives the latest lifecycle frame and the latest progress frame, in
// original sequence order, before any live frames.
func TestStreamSnapshotReplay(t *testing.T) {
	st := newStream()
	st.publish(evQueued, queuedFrame{Job: "j1"}, true, false)
	st.publish(evBatched, batchedFrame{Job: "j1", Batch: "b1"}, true, false)
	st.publish(evProgress, progressFrame{Job: "j1", Done: 1, Total: 3}, false, false)
	st.publish(evProgress, progressFrame{Job: "j1", Done: 2, Total: 3}, false, false)

	sub := st.subscribe()
	defer st.unsubscribe(sub)
	f1, _ := drainOne(t, sub)
	if f1.event != evBatched || f1.seq != 2 {
		t.Fatalf("first replay frame = %s seq %d, want batched seq 2", f1.event, f1.seq)
	}
	f2, _ := drainOne(t, sub)
	if f2.event != evProgress || f2.seq != 4 {
		t.Fatalf("second replay frame = %s seq %d, want progress seq 4 (latest only)", f2.event, f2.seq)
	}
	// Live frames follow the replay.
	st.publish(evRunning, runningFrame{Job: "j1"}, true, false)
	f3, _ := drainOne(t, sub)
	if f3.event != evRunning || f3.seq != 5 {
		t.Fatalf("live frame = %s seq %d, want running seq 5", f3.event, f3.seq)
	}
	select {
	case f := <-sub.ch:
		t.Fatalf("unexpected extra frame %s seq %d", f.event, f.seq)
	default:
	}
}

// TestStreamDropOldest: a subscriber that never drains loses its oldest
// frames, keeps the newest, and never blocks the publisher.
func TestStreamDropOldest(t *testing.T) {
	st := newStream()
	sub := st.subscribe()
	defer st.unsubscribe(sub)

	const extra = 10
	published := make(chan struct{})
	go func() {
		defer close(published)
		for i := 0; i < streamBufFrames+extra; i++ {
			st.publish(evProgress, progressFrame{Done: i + 1}, false, false)
		}
	}()
	select {
	case <-published:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}

	// The buffer holds exactly the newest streamBufFrames frames.
	for want := int64(extra + 1); want <= streamBufFrames+extra; want++ {
		f, ok := drainOne(t, sub)
		if !ok {
			t.Fatalf("channel closed at seq %d", want)
		}
		if f.seq != want {
			t.Fatalf("frame seq = %d, want %d (oldest must drop first)", f.seq, want)
		}
	}
	select {
	case f := <-sub.ch:
		t.Fatalf("unexpected extra frame seq %d", f.seq)
	default:
	}
}

// TestStreamTerminal: the terminal frame is delivered and every subscriber
// channel closes; joining after the end replays the terminal state then
// closes immediately.
func TestStreamTerminal(t *testing.T) {
	st := newStream()
	sub := st.subscribe()
	st.publish(evQueued, queuedFrame{Job: "j1"}, true, false)
	st.publish(stateCanceled, terminalFrame{Job: "j1", State: stateCanceled}, true, true)

	if f, _ := drainOne(t, sub); f.event != evQueued {
		t.Fatalf("frame 1 = %s, want queued", f.event)
	}
	if f, _ := drainOne(t, sub); f.event != stateCanceled {
		t.Fatalf("frame 2 = %s, want canceled", f.event)
	}
	if _, ok := drainOne(t, sub); ok {
		t.Fatal("channel still open after terminal frame")
	}
	st.unsubscribe(sub) // idempotent with the terminal close
	st.unsubscribe(sub)

	// Publishing after the end is a no-op, not a panic.
	st.publish(evProgress, progressFrame{}, false, false)

	// A late join replays the last lifecycle state and then the terminal
	// frame — the terminal lives in its own snapshot slot, it does not
	// erase where the job got to.
	late := st.subscribe()
	if f, _ := drainOne(t, late); f.event != evQueued {
		t.Fatalf("late join frame 1 = %s, want queued", f.event)
	}
	if f, _ := drainOne(t, late); f.event != stateCanceled {
		t.Fatalf("late join frame 2 = %s, want canceled", f.event)
	}
	if _, ok := drainOne(t, late); ok {
		t.Fatal("late join channel not closed")
	}
	st.unsubscribe(late)
}

// TestStreamLateSubscribeAfterTerminal pins the full post-completion
// replay: a subscriber joining after the terminal frame receives the
// latest lifecycle frame, the latest progress frame, and the terminal
// frame — in original sequence order — then an immediate end-of-stream.
// (Before the lastTerm slot existed, the terminal frame overwrote the
// lifecycle snapshot and late joiners lost the running state.)
func TestStreamLateSubscribeAfterTerminal(t *testing.T) {
	st := newStream()
	st.publish(evQueued, queuedFrame{Job: "j1"}, true, false)
	st.publish(evBatched, batchedFrame{Job: "j1", Batch: "b1"}, true, false)
	st.publish(evRunning, runningFrame{Job: "j1", Batch: "b1"}, true, false)
	st.publish(evProgress, progressFrame{Job: "j1", Done: 1, Total: 2}, false, false)
	st.publish(evProgress, progressFrame{Job: "j1", Done: 2, Total: 2}, false, false)
	st.publish(stateDone, terminalFrame{Job: "j1", State: stateDone}, true, true)

	sub := st.subscribe()
	want := []struct {
		event string
		seq   int64
	}{{evRunning, 3}, {evProgress, 5}, {stateDone, 6}}
	for i, w := range want {
		f, ok := drainOne(t, sub)
		if !ok {
			t.Fatalf("stream closed before frame %d (%s)", i+1, w.event)
		}
		if f.event != w.event || f.seq != w.seq {
			t.Fatalf("replay frame %d = %s seq %d, want %s seq %d",
				i+1, f.event, f.seq, w.event, w.seq)
		}
	}
	if _, ok := drainOne(t, sub); ok {
		t.Fatal("late subscriber's channel not closed after terminal replay")
	}
	st.unsubscribe(sub)
}

// TestStreamConcurrentSubscribers: 8 subscribers join, drain, and leave
// while a publisher storms frames and then terminates the stream. Run
// under -race this is the broker's synchronization proof.
func TestStreamConcurrentSubscribers(t *testing.T) {
	st := newStream()
	const subs = 8
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(slow bool) {
			defer wg.Done()
			sub := st.subscribe()
			defer st.unsubscribe(sub)
			sawTerminal := false
			for f := range sub.ch {
				if slow {
					time.Sleep(time.Millisecond) // force drop-oldest pressure
				}
				if f.event == stateDone {
					sawTerminal = true
				}
			}
			if !sawTerminal {
				t.Error("subscriber missed the terminal frame")
			}
		}(i%2 == 0)
	}
	for i := 0; i < 200; i++ {
		st.publish(evProgress, progressFrame{Done: i + 1, Total: 200}, false, false)
	}
	st.publish(stateDone, terminalFrame{State: stateDone}, true, true)
	wg.Wait()
}

// sseFrameDoc is one parsed SSE frame from the wire.
type sseFrameDoc struct {
	id    string
	event string
	data  string
}

// readSSE consumes an SSE body until the stream ends, returning the frames.
func readSSE(t *testing.T, body *bufio.Reader) []sseFrameDoc {
	t.Helper()
	var frames []sseFrameDoc
	cur := sseFrameDoc{}
	for {
		line, err := body.ReadString('\n')
		if err != nil {
			return frames // EOF: server closed the stream
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrameDoc{}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"): // comment/keepalive
		default:
			t.Fatalf("unparseable SSE line %q", line)
		}
	}
}

// TestJobEventsSSE drives the full HTTP surface: submit a 3-variant job,
// stream its events, and require per-variant progress frames and a
// terminal done frame. The snapshot replay makes this deterministic even
// if the job finishes before the subscriber connects.
func TestJobEventsSSE(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 2})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 2000)), http.StatusCreated)
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4},{"eps":4,"minpts":4}]}`,
		http.StatusAccepted)

	resp, err := http.Get(c.base + "/v1/jobs/j1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	frames := readSSE(t, bufio.NewReader(resp.Body))
	if len(frames) == 0 {
		t.Fatal("no SSE frames")
	}
	last := frames[len(frames)-1]
	if last.event != stateDone {
		t.Fatalf("terminal frame = %s (%s), want done", last.event, last.data)
	}
	progress := 0
	for _, f := range frames {
		if f.event == evProgress {
			progress++
			if !strings.Contains(f.data, `"duration_ms"`) {
				t.Errorf("progress frame lacks duration_ms: %s", f.data)
			}
		}
	}
	if progress == 0 {
		t.Errorf("no progress frames; got %+v", frames)
	}

	// A join after completion still sees the snapshot: the running state,
	// the latest progress, then the terminal frame, then EOF.
	resp2, err := http.Get(c.base + "/v1/jobs/j1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	replay := readSSE(t, bufio.NewReader(resp2.Body))
	if len(replay) != 3 || replay[0].event != evRunning ||
		replay[1].event != evProgress || replay[2].event != stateDone {
		t.Fatalf("post-completion replay = %+v, want [running progress done]", replay)
	}

	if _, _, body := c.do("GET", "/v1/jobs/nope/events", nil); !strings.Contains(string(body), "no job") {
		t.Errorf("missing-job events body = %s", body)
	}
}

// TestJobEventsCancel: a canceled job's stream terminates with a canceled
// frame — the client is never left hanging on a job that will not run.
func TestJobEventsCancel(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1, BatchWindow: time.Minute})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 500)), http.StatusCreated)
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4}]}`, http.StatusAccepted)

	resp, err := http.Get(c.base + "/v1/jobs/j1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	c.doJSON("DELETE", "/v1/jobs/j1", nil, http.StatusOK)
	frames := readSSE(t, bufio.NewReader(resp.Body))
	if len(frames) == 0 || frames[len(frames)-1].event != stateCanceled {
		t.Fatalf("frames = %+v, want trailing canceled", frames)
	}
}
