// Package server implements vdbscand, the HTTP/JSON clustering service.
//
// The paper's premise — many (ε, minpts) variants amortizing one shared
// immutable index — is exactly the shape of a multi-tenant service: the
// expensive artifact (the frozen R-tree pair) is built once per dataset at
// upload time and shared by every job that targets the dataset, the way
// VariantDBSCAN shares it across variants inside one run. The server adds
// the missing network-facing layers:
//
//   - a dataset registry: upload, list, delete; each dataset holds one
//     frozen vdbscan.Index; appended points are staged and folded in by a
//     background re-freeze once they exceed a threshold;
//   - an async job queue: POST a variant list, get a job ID, poll (or
//     long-poll) for per-variant results and labels;
//   - bounded-queue admission control: when the backlog reaches QueueDepth
//     jobs, submissions are rejected with 429 and a Retry-After hint
//     instead of queuing without bound;
//   - cross-request batching: jobs targeting the same dataset that arrive
//     within BatchWindow are coalesced into a single ClusterVariants run,
//     so the scheduler's reuse heuristics see the union of their variants
//     (more completed sources to reuse from, one queue drain instead of
//     many) — the service-level analogue of the paper's variant set;
//   - per-job deadlines and cancellation: each job carries a timeout and
//     can be canceled; a batch run is canceled only when every job in it
//     has gone away;
//   - observability: each batch run records a vdbscan.Tracer, exported per
//     job at /v1/jobs/{id}/trace; work counters and server counters are
//     exposed at /metrics;
//   - graceful drain: Drain stops admission, lets running and queued
//     batches finish, and flushes pending dataset re-freezes;
//   - multi-tenancy: optional API-key auth resolves every request to a
//     tenant carrying token-bucket rate limits, a concurrent-jobs cap, and
//     a work-metered quota ledger charged by each finished job's ε-search
//     work (GET /v2/tenants/self); finished results are TTL-evicted (410
//     Gone afterwards); and under queue pressure, opted-in tenants are
//     served ρ-approximate answers tagged "quality":"approx". The routes
//     exist under /v1 (legacy error bodies, byte-compatible) and /v2 (the
//     versioned error envelope and tenant-aware documents).
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vdbscan"
	"vdbscan/internal/obs/prom"
)

// Defaults for Config zero values (DefaultBatchWindow is the one exception:
// a zero BatchWindow disables coalescing rather than defaulting on, so that
// Config{} is the simplest correct server).
const (
	DefaultQueueDepth      = 64
	DefaultJobTimeout      = 5 * time.Minute
	DefaultMaxBodyBytes    = 64 << 20
	DefaultRunners         = 2
	DefaultRefreezePoints  = 4096
	DefaultMaxLongPollWait = 60 * time.Second
	// DefaultJobTTL is how long a finished job's results stay retrievable
	// before the eviction sweeper reclaims them (Config.JobTTL < 0 keeps
	// them forever, the pre-eviction behavior).
	DefaultJobTTL = 15 * time.Minute
	// DefaultShedRho is the ρ-approximation slack used by load-shed runs
	// when Config.ShedRho is zero: answers may merge clusters up to
	// ε·(1+ρ) apart.
	DefaultShedRho = 0.5
)

// Config parameterizes a Server. The zero value is usable: every field
// falls back to the package default above, except BatchWindow, whose zero
// disables cross-request batching (each job runs as its own batch).
type Config struct {
	// Threads is the vdbscan worker-pool width of each ClusterVariants run.
	Threads int
	// QueueDepth bounds the number of admitted-but-not-yet-running jobs;
	// submissions beyond it get 429 with a Retry-After header.
	QueueDepth int
	// BatchWindow is the coalescing window: jobs for the same dataset
	// admitted within it join one ClusterVariants run. Zero or negative
	// disables coalescing.
	BatchWindow time.Duration
	// JobTimeout is the default per-job deadline, counted from admission;
	// a job may override it (shorter or longer) at submission.
	JobTimeout time.Duration
	// MaxBodyBytes caps upload and submission request bodies.
	MaxBodyBytes int64
	// Runners is the number of batch-runner goroutines: how many
	// ClusterVariants runs (over distinct batches) may be in flight at once.
	Runners int
	// RefreezePoints is the staged-append threshold that triggers a
	// background dataset re-freeze (index rebuild folding staged points in).
	RefreezePoints int
	// IndexR overrides the ε-search tree leaf occupancy for uploaded
	// datasets (0 keeps the library default; a per-upload ?r= query
	// parameter overrides both).
	IndexR int
	// IndexKind selects the ε-search substrate for uploaded datasets
	// (zero = the packed R-tree pair; a per-upload ?index= query
	// parameter overrides it).
	IndexKind vdbscan.IndexKind
	// Tiles is the default tile-level parallelism for batch runs
	// (vdbscan.WithTiles): 0 auto, 1 untiled, >= 2 an explicit tile
	// target. A per-job "tiles" parameter overrides it; when coalescing
	// folds jobs with different requests into one batch, the largest
	// wins (labels are identical at any tile count, so the choice only
	// affects latency).
	Tiles int
	// Logger receives the server's structured logs (admission, batch
	// seal/run, refreeze, drain at info; per-request access lines at
	// debug), each carrying request/job/batch/dataset correlation IDs.
	// Nil discards everything.
	Logger *slog.Logger
	// DataDir, when non-empty, turns on the durable dataset store: every
	// dataset gets a page-aligned snapshot of its frozen index (written at
	// upload and after each re-freeze) plus a write-ahead log of appended
	// points, under DataDir/<dataset-id>/. On startup the directory is
	// scanned and every readable dataset is restored — the snapshot is
	// served via mmap with zero deserialization, the WAL backlog replays
	// into the staged set — so a warm restart answers its first job
	// without re-freezing anything. Corrupt or torn files are skipped
	// with a log line, never fatal. Empty keeps the registry memory-only.
	DataDir string
	// Tenants configures API-key multi-tenancy. Empty leaves the server
	// open: every caller is the anonymous tenant with no limits, exactly
	// the pre-tenancy behavior. Non-empty requires every /v1 and /v2
	// data-plane request to present a configured key (401 otherwise) and
	// applies each tenant's rate, concurrency, and work-quota limits.
	// Invalid configurations (empty/duplicate ids or keys, negative
	// limits) make New panic; load files through ParseKeysJSON to get an
	// error instead.
	Tenants []TenantConfig
	// JobTTL is how long a finished job's results (document, labels,
	// trace) stay retrievable. After it, the eviction sweeper reclaims
	// the job and GETs return 410 Gone. Zero uses DefaultJobTTL; negative
	// disables eviction (results live forever, the pre-TTL behavior).
	JobTTL time.Duration
	// ShedThreshold is the queue depth at which load shedding engages:
	// submissions from approx-opted-in tenants are answered by
	// ρ-approximate DBSCAN (tagged "quality":"approx") instead of joining
	// the exact backlog. Zero disables shedding.
	ShedThreshold int
	// ShedRho is the ρ slack of shed runs, in (0, 1]. Zero uses
	// DefaultShedRho.
	ShedRho float64
}

func (c Config) withDefaults() Config {
	if c.Threads <= 0 {
		c.Threads = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = DefaultJobTimeout
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if c.Runners <= 0 {
		c.Runners = DefaultRunners
	}
	if c.RefreezePoints <= 0 {
		c.RefreezePoints = DefaultRefreezePoints
	}
	if c.JobTTL == 0 {
		c.JobTTL = DefaultJobTTL
	}
	if c.ShedRho <= 0 || c.ShedRho > 1 {
		c.ShedRho = DefaultShedRho
	}
	return c
}

// counters are the server-level monotonic counters exposed at /metrics.
// All fields are atomics: they are bumped from handler and runner
// goroutines without locks.
type counters struct {
	jobsAccepted  atomic.Int64
	jobsRejected  atomic.Int64 // 429: queue full
	jobsCompleted atomic.Int64
	jobsFailed    atomic.Int64
	jobsCanceled  atomic.Int64
	jobsCoalesced atomic.Int64 // jobs that shared their batch with another job
	batchesRun    atomic.Int64
	variantsRun   atomic.Int64 // union variants executed across all batches
	refreezes     atomic.Int64
	datasets      atomic.Int64 // created, monotonic (live count is registry.len)
}

// Server is the vdbscand service state: registry, job store, batch queue,
// and counters. Create one with New, expose Handler over any net/http
// server, and call Drain before exit.
type Server struct {
	cfg Config

	registry *registry
	jobs     *jobStore

	mu     sync.Mutex // guards open batches (per dataset) and seal/admit atomicity
	open   map[string]*batch
	queued int // admitted jobs whose batch has not started running

	runCh    chan *batch
	batchWG  sync.WaitGroup // one unit per sealed batch until its runner finishes
	batchSeq atomic.Int64

	draining atomic.Bool
	closed   atomic.Bool

	tenants   *tenantSet    // API-key auth + per-tenant limits and ledgers
	sweepStop chan struct{} // stops the TTL eviction sweeper; nil when disabled

	ctrs counters

	workMu sync.Mutex
	work   vdbscan.Work // accumulated across all batch runs

	mx     *serverMetrics // Prometheus exposition (see metrics.go)
	log    *slog.Logger
	reqSeq atomic.Int64 // request-ID correlation sequence

	start time.Time
}

// New returns a started server: its batch runners are live and Handler is
// ready to serve. Callers own shutdown via Drain and/or Close.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	tenants, err := newTenantSet(cfg.Tenants)
	if err != nil {
		// Programmer error, same class as a malformed mux pattern: a server
		// that silently dropped a misconfigured tenant would run open where
		// the operator asked for auth.
		panic("server: invalid Config.Tenants: " + err.Error())
	}
	s := &Server{
		cfg:      cfg,
		registry: newRegistry(cfg),
		jobs:     newJobStore(),
		open:     map[string]*batch{},
		// A batch holds ≥1 job and jobs are bounded by QueueDepth, so the
		// channel can always absorb every sealed batch without blocking.
		runCh:   make(chan *batch, cfg.QueueDepth+1),
		tenants: tenants,
		start:   time.Now(),
	}
	s.mx = newServerMetrics(s)
	s.log = cfg.Logger
	if s.log == nil {
		s.log = discardLogger()
	}
	s.registry.onRefreeze = func(d *dataset, points int, dur time.Duration) {
		s.mx.refreezeDur.With(d.id, d.kind.String(), labelNA).Observe(dur.Seconds())
		s.log.Info("dataset refrozen",
			"dataset", d.id, "points", points, "duration", dur)
	}
	s.registry.onPersist = func(d *dataset, op string, dur time.Duration) {
		var vec *prom.Vec
		switch op {
		case persistOpWrite:
			vec = s.mx.snapshotWrite
		case persistOpLoad:
			vec = s.mx.snapshotLoad
		case persistOpWALReplay:
			vec = s.mx.walReplay
		default:
			return
		}
		vec.With(d.id, d.kind.String(), labelNA).Observe(dur.Seconds())
	}
	// Restore persisted datasets before the runners start, so the first
	// admitted job already sees the warm registry.
	s.registry.loadAll()
	if cfg.JobTTL > 0 {
		s.sweepStop = make(chan struct{})
		go s.sweepEvictions(cfg.JobTTL)
	}
	for i := 0; i < cfg.Runners; i++ {
		go s.runner()
	}
	return s
}

// runner executes sealed batches until the channel closes.
func (s *Server) runner() {
	for b := range s.runCh {
		s.runBatch(b)
		s.batchWG.Done()
	}
}

// admit performs bounded-queue admission control and batch assignment for
// one submitted job. It returns the job's batch, or an admissionError.
func (s *Server) admit(j *job) error {
	if s.draining.Load() {
		return errDraining
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued >= s.cfg.QueueDepth {
		s.ctrs.jobsRejected.Add(1)
		return errQueueFull
	}
	s.queued++
	s.ctrs.jobsAccepted.Add(1)
	if j.tenant != nil {
		// Counted down by finish; the pair makes jobsLive the tenant's
		// queued-or-running gauge that the concurrency cap reads.
		j.tenant.jobsLive.Add(1)
	}
	// The queued frame goes out before batch assignment so subscribers see
	// queued -> batched in order even when the batch seals synchronously.
	j.events.publish(evQueued, queuedFrame{
		Job: j.id, Dataset: j.datasetID, Variants: len(j.params), Queued: s.queued,
	}, true, false)

	var b *batch
	if !j.approx {
		b = s.open[j.datasetID]
	}
	if b == nil {
		b = newBatch(s.nextBatchID(), j.datasetID)
		b.approx = j.approx
		// A shed job never coalesces: its batch seals immediately below, so
		// an exact job arriving inside the window cannot be downgraded by
		// sharing a run with it (and vice versa).
		if !j.approx && s.cfg.BatchWindow > 0 {
			s.open[j.datasetID] = b
			b.timer = time.AfterFunc(s.cfg.BatchWindow, func() { s.seal(b) })
		}
	}
	n, union := b.add(j)
	switch {
	case n == 2:
		// The batch just became shared: both members now count as coalesced.
		s.ctrs.jobsCoalesced.Add(2)
	case n > 2:
		s.ctrs.jobsCoalesced.Add(1)
	}
	j.events.publish(evBatched, batchedFrame{
		Job: j.id, Batch: b.id, BatchJobs: n, BatchVariants: union,
	}, true, false)
	if j.approx || s.cfg.BatchWindow <= 0 {
		// Coalescing disabled (or a shed job): the batch seals with its
		// single job.
		s.sealLocked(b)
	}
	return nil
}

// seal closes a batch to new jobs and hands it to the runners.
func (s *Server) seal(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sealLocked(b)
}

func (s *Server) sealLocked(b *batch) {
	if b.sealed {
		return
	}
	b.sealed = true
	if b.timer != nil {
		b.timer.Stop()
	}
	if s.open[b.datasetID] == b {
		delete(s.open, b.datasetID)
	}
	b.mu.Lock()
	jobs, variants := len(b.jobs), len(b.union)
	b.mu.Unlock()
	s.log.Info("batch sealed",
		"batch", b.id, "dataset", b.datasetID, "jobs", jobs, "variants", variants,
		"window", time.Since(b.created))
	s.batchWG.Add(1)
	s.runCh <- b
}

// sealAll flushes every open batching window (used by Drain so queued work
// starts immediately instead of waiting out its window).
func (s *Server) sealAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.open {
		s.sealLocked(b)
	}
}

// jobLeftQueue is called once per job when its batch starts running (or
// when a still-queued job is canceled), releasing its admission slot.
func (s *Server) jobLeftQueue(n int) {
	s.mu.Lock()
	s.queued -= n
	if s.queued < 0 { // defensive; indicates an accounting bug
		s.queued = 0
	}
	s.mu.Unlock()
}

// queueDepth reports the current admission backlog.
func (s *Server) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

func (s *Server) addWork(w vdbscan.Work) {
	s.workMu.Lock()
	s.work = s.work.Add(w)
	s.workMu.Unlock()
}

func (s *Server) workSnapshot() vdbscan.Work {
	s.workMu.Lock()
	defer s.workMu.Unlock()
	return s.work
}

func (s *Server) nextBatchID() string {
	return fmt.Sprintf("b%d", s.batchSeq.Add(1))
}

// Drain gracefully quiesces the server: admission stops (submissions and
// uploads get 503), open batching windows are flushed so queued jobs start
// immediately, every running and queued batch finishes, and pending dataset
// re-freezes are flushed. It returns nil when fully drained, or ctx's error
// if the deadline expires first (work keeps finishing in the background).
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("drain started", "queued", s.queueDepth())
	s.sealAll()
	done := make(chan struct{})
	go func() {
		s.batchWG.Wait()
		s.registry.flushRefreezes()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.log.Warn("drain deadline expired; work finishes in background", "err", ctx.Err())
		return ctx.Err()
	}
}

// Close stops the batch runners. Call after Drain; batches still queued are
// executed first (runners drain the channel before exiting is NOT
// guaranteed by close semantics alone, hence Drain-first).
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.runCh)
		if s.sweepStop != nil {
			close(s.sweepStop)
		}
	}
}

// Draining reports whether the server has stopped admitting work.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the service's HTTP routes. Every data-plane route is
// mounted twice: under /v1 (the original surface, error bodies and
// documents byte-compatible with the first release, pinned by goldens) and
// under /v2 (the multi-tenant surface: versioned error envelope, tenant and
// work fields in job documents, plus the /v2-only tenant routes). One
// handler serves both — response rendering branches on the prefix — so the
// surfaces can never drift apart behaviorally.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method, path string
		h            http.HandlerFunc
	}{
		{"POST", "/datasets", s.handleDatasetUpload},
		{"GET", "/datasets", s.handleDatasetList},
		{"GET", "/datasets/{id}", s.handleDatasetGet},
		{"DELETE", "/datasets/{id}", s.handleDatasetDelete},
		{"POST", "/datasets/{id}/points", s.handleDatasetAppend},
		{"POST", "/datasets/{id}/jobs", s.handleJobSubmit},
		{"GET", "/jobs", s.handleJobList},
		{"GET", "/jobs/{id}", s.handleJobGet},
		{"DELETE", "/jobs/{id}", s.handleJobCancel},
		{"GET", "/jobs/{id}/labels", s.handleJobLabels},
		{"GET", "/jobs/{id}/trace", s.handleJobTrace},
		{"GET", "/jobs/{id}/events", s.handleJobEvents},
	}
	for _, version := range []string{"/v1", "/v2"} {
		for _, rt := range routes {
			mux.HandleFunc(rt.method+" "+version+rt.path, rt.h)
		}
	}
	mux.HandleFunc("GET /v2/tenants/self", s.handleTenantSelf)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.withRequestID(s.withAuth(mux))
}
