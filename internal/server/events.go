package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"vdbscan/internal/obs"
)

// SSE frame event names for the job lifecycle. Terminal frames reuse the
// job-state strings (done/failed/canceled) so a client can switch on one
// vocabulary for both polling and streaming.
const (
	evQueued   = "queued"
	evBatched  = "batched"
	evRunning  = "running"
	evProgress = "progress"
	evPhase    = "phase"
)

// streamBufFrames is each subscriber's ring depth. A batch over a union of
// V variants emits ~V progress frames plus 4·V tile-phase frames; 64 rides
// out a multi-second network stall at that rate without ever blocking the
// publisher (overflow drops the subscriber's oldest frame instead).
const streamBufFrames = 64

// eventFrame is one rendered SSE frame: a monotone per-job sequence number
// (the SSE id:, so clients can detect drops), the event name, and the
// marshaled JSON payload.
type eventFrame struct {
	seq   int64
	event string
	data  []byte
}

// stream is one job's event broker: publishers (admission, the batch
// runner, tracer sinks, the watchdog) fan frames out to any number of SSE
// subscribers. Publishing never blocks — a subscriber whose buffer is full
// loses its oldest frame (counted in vdbscand_sse_dropped_frames_total),
// so a stalled client can never stall a batch run.
//
// The stream also keeps a snapshot — the latest lifecycle frame, the
// latest progress frame, and the terminal frame — replayed to every new
// subscriber, so a mid-job join immediately learns the job's current state
// instead of waiting for the next live frame, and a join after the job
// finished still sees where the job got to (lifecycle + progress) before
// the terminal frame and end-of-stream. The terminal frame is kept in its
// own slot: letting it overwrite lastState would strip a late subscriber
// of the last real lifecycle state (running, with its batch binding).
type stream struct {
	mx *serverMetrics // nil until the server wires it (and in unit tests)

	mu        sync.Mutex
	subs      map[*subscriber]struct{}
	seq       int64
	lastState *eventFrame // latest queued/batched/running frame
	lastProg  *eventFrame // latest progress frame
	lastTerm  *eventFrame // the done/failed/canceled frame, once published
	closed    bool        // terminal frame published; stream is over
}

type subscriber struct {
	ch chan eventFrame
	// gone/chClosed are guarded by the owning stream's mu: gone makes
	// unsubscribe idempotent, chClosed prevents a double close when the
	// terminal publish already closed the channel.
	gone     bool
	chClosed bool
}

func newStream() *stream {
	return &stream{subs: map[*subscriber]struct{}{}}
}

// subscribe registers a new subscriber and replays the snapshot (in
// original sequence order) into its buffer. If the job already finished,
// the returned channel holds the replay and is already closed: the
// subscriber drains the terminal state and sees end-of-stream.
func (st *stream) subscribe() *subscriber {
	sub := &subscriber{ch: make(chan eventFrame, streamBufFrames)}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.mx != nil {
		st.mx.sseSubs.Add(1)
	}
	replay := make([]eventFrame, 0, 3)
	if st.lastState != nil {
		replay = append(replay, *st.lastState)
	}
	if st.lastProg != nil {
		replay = append(replay, *st.lastProg)
	}
	if st.lastTerm != nil {
		replay = append(replay, *st.lastTerm)
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].seq < replay[j].seq })
	for _, f := range replay {
		sub.ch <- f // buffer is empty and cap >= 3: never blocks
	}
	if st.closed {
		sub.chClosed = true
		close(sub.ch)
		return sub
	}
	st.subs[sub] = struct{}{}
	return sub
}

// unsubscribe detaches sub; safe to call more than once and after the
// stream closed.
func (st *stream) unsubscribe(sub *subscriber) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if sub.gone {
		return
	}
	sub.gone = true
	delete(st.subs, sub)
	if !sub.chClosed {
		sub.chClosed = true
		close(sub.ch)
	}
	if st.mx != nil {
		st.mx.sseSubs.Add(-1)
	}
}

// publish renders one frame and fans it out. snapshot marks lifecycle
// frames (kept for replay); terminal closes the stream after delivery.
// Nil-safe so tests can exercise jobs without a broker.
func (st *stream) publish(event string, payload any, snapshot, terminal bool) {
	if st == nil {
		return
	}
	data, err := json.Marshal(payload)
	if err != nil { // unreachable for our payload structs; keep the stream alive anyway
		data = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.seq++
	f := eventFrame{seq: st.seq, event: event, data: data}
	switch {
	case terminal:
		st.lastTerm = &f
	case event == evProgress:
		st.lastProg = &f
	case snapshot:
		st.lastState = &f
	}
	if st.mx != nil {
		st.mx.sseFrames.With(event).Inc()
	}
	for sub := range st.subs {
		st.deliver(sub, f)
	}
	if terminal {
		st.closed = true
		for sub := range st.subs {
			if !sub.chClosed {
				sub.chClosed = true
				close(sub.ch)
			}
			delete(st.subs, sub)
		}
	}
}

// deliver sends f without ever blocking: when the buffer is full the
// subscriber's oldest frame is dropped to make room. The subscriber may be
// draining concurrently, so the freed slot can be stolen by... nobody (the
// stream's mu serializes all sends); only a concurrent receive can race,
// and that only makes more room.
func (st *stream) deliver(sub *subscriber, f eventFrame) {
	select {
	case sub.ch <- f:
		return
	default:
	}
	select {
	case <-sub.ch:
		st.noteDrop()
	default: // reader drained it first; room now
	}
	select {
	case sub.ch <- f:
	default: // unreachable: mu serializes senders
		st.noteDrop()
	}
}

func (st *stream) noteDrop() {
	if st.mx != nil {
		st.mx.sseDropped.With().Inc()
	}
}

// ---- frame payloads ------------------------------------------------------

type queuedFrame struct {
	Job      string `json:"job"`
	Dataset  string `json:"dataset"`
	Variants int    `json:"variants"`
	Queued   int    `json:"queue_depth"`
}

type batchedFrame struct {
	Job           string `json:"job"`
	Batch         string `json:"batch"`
	BatchJobs     int    `json:"batch_jobs"`
	BatchVariants int    `json:"batch_variants"`
}

type runningFrame struct {
	Job      string `json:"job"`
	Batch    string `json:"batch"`
	Points   int    `json:"points"`
	Version  int    `json:"version"`
	Variants int    `json:"variants"` // union size the batch run executes
}

type progressFrame struct {
	Job            string  `json:"job"`
	Batch          string  `json:"batch"`
	Done           int     `json:"done"`
	Total          int     `json:"total"`
	Variant        int     `json:"variant"`
	Source         int     `json:"source"`
	FromScratch    bool    `json:"from_scratch"`
	FractionReused float64 `json:"fraction_reused"`
	MeanReused     float64 `json:"mean_fraction_reused"`
	DurationMS     float64 `json:"duration_ms"`
	ElapsedMS      float64 `json:"elapsed_ms"`
}

type phaseFrame struct {
	Job     string  `json:"job"`
	Batch   string  `json:"batch"`
	Variant int     `json:"variant"`
	Phase   string  `json:"phase"` // tile_run | tile_merge
	State   string  `json:"state"` // begin | end
	AtMS    float64 `json:"at_ms"` // offset from the run start
}

type terminalFrame struct {
	Job        string  `json:"job"`
	State      string  `json:"state"`
	Error      string  `json:"error,omitempty"`
	DurationMS float64 `json:"duration_ms"` // admission -> terminal
}

func phaseName(ph obs.Phase) string {
	switch ph {
	case obs.PhaseTileRun:
		return "tile_run"
	case obs.PhaseTileMerge:
		return "tile_merge"
	default:
		return ""
	}
}

// ---- SSE handler ---------------------------------------------------------

// sseHeartbeat keeps idle streams alive through proxies that time out
// silent connections.
const sseHeartbeat = 15 * time.Second

// handleJobEvents streams the job's lifecycle as Server-Sent Events:
// queued -> batched -> running -> per-variant progress (and tile_run /
// tile_merge phase frames on tiled runs) -> done|failed|canceled, then
// EOF. A subscriber joining mid-job first receives a snapshot (current
// state + latest progress); one joining after the job finished receives
// that snapshot plus the terminal frame and an immediate end-of-stream.
// Frames carry an id: with the per-job sequence number, so gaps reveal
// drop-oldest backpressure.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.apiErr(w, r, http.StatusInternalServerError, errCodeInternal,
			"streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := j.events.subscribe()
	defer j.events.unsubscribe(sub)
	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case f, ok := <-sub.ch:
			if !ok {
				return // terminal frame delivered (or stream torn down)
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", f.seq, f.event, f.data); err != nil {
				return
			}
			fl.Flush()
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
