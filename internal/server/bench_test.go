package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vdbscan"
	"vdbscan/internal/tec"
)

// The throughput workload: 8 concurrent clients submit 24 jobs of 3
// variants each, drawn from a pool of 8 distinct (ε, minpts) pairs — the
// "several users sweeping the same storm dataset" shape the batching
// window is designed for. With batching off every job is its own
// ClusterVariants run (72 variant executions, reuse only within a job);
// with a window on, same-dataset jobs coalesce and the union dedup
// collapses repeated variants across clients.
const (
	benchClients     = 8
	benchJobs        = 24
	benchVariantPool = 8
)

var benchTEC struct {
	once sync.Once
	csv  []byte
	n    int
}

// benchDataset simulates SW1 scaled to ~100k points (the paper's smallest
// TEC dataset at ~5.4% size) and caches its CSV encoding.
func benchDataset(b *testing.B) []byte {
	benchTEC.once.Do(func() {
		ds, err := tec.SW(1, 100000.0/1864620.0)
		if err != nil {
			b.Fatal(err)
		}
		benchTEC.csv = pointsCSV(b, ds.Points)
		benchTEC.n = ds.Len()
	})
	return benchTEC.csv
}

func benchVariants(job int) []vdbscan.Params {
	out := make([]vdbscan.Params, 3)
	for v := range out {
		k := (job + v*3) % benchVariantPool // interleave so jobs overlap partially
		out[v] = vdbscan.Params{
			Eps:    1 + 0.5*float64(k%4),
			MinPts: 4 + 4*(k/4),
		}
	}
	return out
}

// BenchmarkServeThroughput measures end-to-end jobs/sec through the HTTP
// surface, batching off vs on. Run with -benchtime 1x: one iteration is
// the whole 24-job workload.
func BenchmarkServeThroughput(b *testing.B) {
	csv := benchDataset(b)
	for _, bw := range []struct {
		name   string
		window time.Duration
	}{
		{"batching=off", 0},
		{"batching=100ms", 100 * time.Millisecond},
	} {
		b.Run(bw.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := New(Config{
					Threads:     1,
					QueueDepth:  256,
					BatchWindow: bw.window,
					Runners:     1,
				})
				ts := httptest.NewServer(s.Handler())
				c := &benchClient{b: b, base: ts.URL}
				c.post("/v1/datasets?name=sw1-100k", csv)
				b.StartTimer()

				start := time.Now()
				var wg sync.WaitGroup
				for cl := 0; cl < benchClients; cl++ {
					wg.Add(1)
					go func(cl int) {
						defer wg.Done()
						perClient := benchJobs / benchClients
						ids := make([]string, 0, perClient)
						for jb := 0; jb < perClient; jb++ {
							ids = append(ids, c.submit(benchVariants(cl*perClient+jb)))
						}
						for _, id := range ids {
							c.wait(id)
						}
					}(cl)
				}
				wg.Wait()
				elapsed := time.Since(start)

				b.StopTimer()
				b.ReportMetric(float64(benchJobs)/elapsed.Seconds(), "jobs/s")
				b.ReportMetric(float64(s.ctrs.batchesRun.Load()), "batches")
				b.ReportMetric(float64(s.ctrs.variantsRun.Load()), "variants")
				s.Close()
				ts.Close()
				b.StartTimer()
			}
		})
	}
}

// benchClient is a minimal JSON client that fails the benchmark on any
// unexpected response.
type benchClient struct {
	b    *testing.B
	base string
}

func (c *benchClient) post(path string, body []byte) map[string]any {
	tc := testClientDo(c.b, c.base, "POST", path, body)
	return tc
}

func (c *benchClient) submit(params []vdbscan.Params) string {
	specs := make([]string, len(params))
	for i, p := range params {
		specs[i] = fmt.Sprintf(`{"eps":%g,"minpts":%d}`, p.Eps, p.MinPts)
	}
	doc := testClientDo(c.b, c.base, "POST", "/v1/datasets/d1/jobs",
		[]byte(`{"variants":[`+strings.Join(specs, ",")+`]}`))
	id, ok := doc["id"].(string)
	if !ok {
		c.b.Fatalf("submit failed: %v", doc)
	}
	return id
}

func (c *benchClient) wait(id string) {
	for {
		doc := testClientDo(c.b, c.base, "GET", "/v1/jobs/"+id+"?wait=30s", nil)
		switch doc["state"] {
		case stateDone:
			return
		case stateFailed, stateCanceled:
			c.b.Fatalf("job %s: %v (%v)", id, doc["state"], doc["error"])
		}
	}
}

// testClientDo is the testing.TB-generic request helper the benchmark uses
// (testClient methods take *testing.T).
func testClientDo(tb testing.TB, base, method, path string, body []byte) map[string]any {
	tb.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		tb.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		tb.Fatalf("%s %s: %v", method, path, err)
	}
	return doc
}
