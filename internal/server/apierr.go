package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// The service exposes two API generations side by side:
//
//   - /v1/ is the original surface, kept byte-compatible: every non-2xx
//     response is the flat `{"error": "<message>"}` document the first
//     service release shipped, pinned by golden tests so existing clients
//     and scripts never observe a change;
//   - /v2/ carries the same routes plus the multi-tenant surface, and
//     every non-2xx response uses one versioned envelope:
//
//	{"error": {"code": "<stable-code>", "message": "...", "retry_after_s": N}}
//
// The code vocabulary is closed and machine-readable — clients switch on
// it instead of parsing message strings — and retry_after_s mirrors the
// Retry-After header on responses that carry one (429/503), so a client
// that only reads bodies still learns the backoff.
const (
	errCodeBadRequest     = "bad_request"
	errCodeUnauthorized   = "unauthorized"
	errCodeNotFound       = "not_found"
	errCodeConflict       = "conflict"
	errCodeGone           = "gone"
	errCodeQueueFull      = "queue_full"
	errCodeRateLimited    = "rate_limited"
	errCodeQuotaExhausted = "quota_exhausted"
	errCodeDraining       = "draining"
	errCodeInternal       = "internal"
)

// errorEnvelope is the versioned v2 error document.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after_s,omitempty"`
}

// isV2 reports whether the request arrived on the v2 surface. The v2-only
// routes (e.g. /v2/tenants/self) match too, so every error they emit is
// enveloped.
func isV2(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/v2/")
}

// apiErr writes one non-2xx response in the version-appropriate format:
// the flat legacy document on /v1 (byte-identical to the pre-envelope
// service), the coded envelope on /v2.
func (s *Server) apiErr(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	s.apiErrRetry(w, r, status, code, 0, format, args...)
}

// apiErrRetry is apiErr with a backoff hint: retryAfterS > 0 sets the
// Retry-After header on both surfaces and the envelope's retry_after_s on
// v2.
func (s *Server) apiErrRetry(w http.ResponseWriter, r *http.Request, status int, code string, retryAfterS int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if retryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterS))
	}
	if isV2(r) {
		writeJSON(w, status, errorEnvelope{Error: errorBody{
			Code: code, Message: msg, RetryAfterS: retryAfterS,
		}})
		return
	}
	writeJSON(w, status, errorDoc{Error: msg})
}
