package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vdbscan"
	"vdbscan/internal/data"
	"vdbscan/internal/dataio"
)

var update = flag.Bool("update", false, "rewrite golden files")

func testPoints(t testing.TB, n int) []vdbscan.Point {
	t.Helper()
	ds, err := data.Generate(data.SynthConfig{Class: data.ClassCF, N: n, NoiseFrac: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Points
}

func pointsCSV(t testing.TB, pts []vdbscan.Point) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.WriteCSV(&buf, &data.Dataset{Name: "test", Points: pts}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testClient wraps the httptest base URL with JSON conveniences. Every call
// fails the test on transport errors; HTTP status is returned for the test
// to assert on.
type testClient struct {
	t    *testing.T
	base string
	key  string // API key sent as Authorization: Bearer when non-empty
}

// withKey returns a copy of the client authenticating as the given tenant.
func (c *testClient) withKey(key string) *testClient {
	return &testClient{t: c.t, base: c.base, key: key}
}

func (c *testClient) do(method, path string, body []byte) (int, http.Header, []byte) {
	c.t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.key != "" {
		req.Header.Set("Authorization", "Bearer "+c.key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatalf("%s %s: read body: %v", method, path, err)
	}
	return resp.StatusCode, resp.Header, out
}

func (c *testClient) doJSON(method, path string, body []byte, wantCode int) map[string]any {
	c.t.Helper()
	code, _, out := c.do(method, path, body)
	if code != wantCode {
		c.t.Fatalf("%s %s = %d, want %d; body: %s", method, path, code, wantCode, out)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		c.t.Fatalf("%s %s: bad JSON %q: %v", method, path, out, err)
	}
	return doc
}

func (c *testClient) submitJob(datasetID string, body string, wantCode int) map[string]any {
	c.t.Helper()
	return c.doJSON("POST", "/v1/datasets/"+datasetID+"/jobs", []byte(body), wantCode)
}

// waitDone long-polls the job until it turns terminal.
func (c *testClient) waitDone(jobID string) map[string]any {
	c.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		doc := c.doJSON("GET", "/v1/jobs/"+jobID+"?wait=10s", nil, http.StatusOK)
		switch doc["state"] {
		case stateDone, stateFailed, stateCanceled:
			return doc
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s still %v after 2m", jobID, doc["state"])
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *testClient) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain at cleanup: %v", err)
		}
		s.Close()
		ts.Close()
	})
	return s, &testClient{t: t, base: ts.URL}
}

// scrub replaces run-dependent fields (timestamps, durations, reuse
// fractions) with stable placeholders so documents golden-compare.
func scrub(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			switch k {
			case "created", "started", "finished":
				if s, ok := val.(string); ok && s != "" {
					x[k] = "<ts>"
				}
			case "duration_ms":
				x[k] = 0
			case "fraction_reused":
				if f, ok := val.(float64); ok && f > 0 {
					x[k] = "<reused>"
				}
			case "eps_searches", "candidates_examined", "charge":
				// Work counters vary with index traversal order; the
				// charge identity (= searches + candidates) is pinned
				// separately by TestQuotaChargesMatchWork.
				if f, ok := val.(float64); ok && f > 0 {
					x[k] = "<work>"
				}
			default:
				x[k] = scrub(val)
			}
		}
		return x
	case []any:
		for i := range x {
			x[i] = scrub(x[i])
		}
		return x
	default:
		return v
	}
}

func checkGolden(t *testing.T, name string, doc map[string]any) {
	t.Helper()
	got, err := json.MarshalIndent(scrub(doc), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestJobLifecycleGolden drives the happy path end to end — upload, submit,
// long-poll to completion — and golden-compares every document shape.
func TestJobLifecycleGolden(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})

	dsDoc := c.doJSON("POST", "/v1/datasets?name=tec", pointsCSV(t, testPoints(t, 2000)), http.StatusCreated)
	checkGolden(t, "dataset_created.golden.json", dsDoc)
	if dsDoc["id"] != "d1" {
		t.Fatalf("dataset id = %v", dsDoc["id"])
	}

	sub := c.submitJob("d1", `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4},{"eps":4,"minpts":4}]}`,
		http.StatusAccepted)
	checkGolden(t, "job_submitted.golden.json", sub)
	if sub["id"] != "j1" || sub["state"] != stateQueued {
		t.Fatalf("submit doc: %v", sub)
	}

	done := c.waitDone("j1")
	checkGolden(t, "job_done.golden.json", done)
	if done["state"] != stateDone {
		t.Fatalf("job finished %v (%v)", done["state"], done["error"])
	}

	// Labels for a finished variant come back as index,label CSV.
	code, hdr, labels := c.do("GET", "/v1/jobs/j1/labels?variant=1", nil)
	if code != http.StatusOK {
		t.Fatalf("labels = %d: %s", code, labels)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("labels content-type = %q", ct)
	}
	if !bytes.HasPrefix(labels, []byte("# clusters: ")) {
		t.Errorf("labels CSV header missing: %.60q", labels)
	}

	// The trace endpoint serves both renderings of the batch's run.
	code, _, chrome := c.do("GET", "/v1/jobs/j1/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("trace = %d", code)
	}
	var tr map[string]any
	if err := json.Unmarshal(chrome, &tr); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if _, ok := tr["traceEvents"]; !ok {
		t.Error("chrome trace lacks traceEvents")
	}
	code, _, text := c.do("GET", "/v1/jobs/j1/trace?format=text", nil)
	if code != http.StatusOK || !strings.Contains(string(text), "variants") {
		t.Errorf("text trace = %d: %.80q", code, text)
	}
}

// TestDatasetValidation covers the 4xx surface of the dataset resources.
func TestDatasetValidation(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})

	code, _, body := c.do("POST", "/v1/datasets", []byte("not,a,number\n"))
	if code != http.StatusBadRequest {
		t.Errorf("bad CSV = %d: %s", code, body)
	}
	code, _, _ = c.do("POST", "/v1/datasets", []byte(""))
	if code != http.StatusBadRequest {
		t.Errorf("empty dataset = %d", code)
	}
	code, _, _ = c.do("GET", "/v1/datasets/d99", nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown dataset = %d", code)
	}

	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 100)), http.StatusCreated)
	c.submitJob("d1", `{"variants":[]}`, http.StatusBadRequest)
	c.submitJob("d1", `{"variants":[{"eps":-1,"minpts":4}]}`, http.StatusBadRequest)
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":0}]}`, http.StatusBadRequest)
	c.submitJob("d9", `{"variants":[{"eps":2,"minpts":4}]}`, http.StatusNotFound)

	code, _, _ = c.do("DELETE", "/v1/datasets/d1", nil)
	if code != http.StatusNoContent {
		t.Errorf("delete = %d", code)
	}
	code, _, _ = c.do("GET", "/v1/datasets/d1", nil)
	if code != http.StatusNotFound {
		t.Errorf("get after delete = %d", code)
	}
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4}]}`, http.StatusNotFound)
}

// TestUploadIndexKind covers the ?index= upload parameter: the dataset doc
// reports its substrate, bad values 400, and the same job produces the same
// clustering (labels byte-for-byte) on either kind.
func TestUploadIndexKind(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})
	csv := pointsCSV(t, testPoints(t, 1500))

	code, _, body := c.do("POST", "/v1/datasets?index=kdtree", csv)
	if code != http.StatusBadRequest {
		t.Fatalf("bad index kind = %d: %s", code, body)
	}

	rt := c.doJSON("POST", "/v1/datasets?name=rt", csv, http.StatusCreated)
	gr := c.doJSON("POST", "/v1/datasets?name=gr&index=grid", csv, http.StatusCreated)
	if rt["index"] != "rtree" || gr["index"] != "grid" {
		t.Fatalf("dataset docs report index %v / %v, want rtree / grid", rt["index"], gr["index"])
	}

	const job = `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4}]}`
	labels := map[string][]byte{}
	for _, d := range []map[string]any{rt, gr} {
		sub := c.submitJob(d["id"].(string), job, http.StatusAccepted)
		done := c.waitDone(sub["id"].(string))
		if done["state"] != stateDone {
			t.Fatalf("job on %v finished %v (%v)", d["index"], done["state"], done["error"])
		}
		code, _, out := c.do("GET", "/v1/jobs/"+sub["id"].(string)+"/labels?variant=0", nil)
		if code != http.StatusOK {
			t.Fatalf("labels on %v = %d: %s", d["index"], code, out)
		}
		labels[d["index"].(string)] = out
	}
	if !bytes.Equal(labels["rtree"], labels["grid"]) {
		t.Error("grid-backed dataset produced different labels than the R-tree one")
	}
}

// TestJobTilesParam covers the per-job "tiles" parameter: a negative value
// 400s, and the same job on a grid-backed dataset yields byte-identical
// labels tiled (tiles=4) and untiled (tiles=1) — the service-level face of
// the tiled runner's exactness contract.
func TestJobTilesParam(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 2})
	doc := c.doJSON("POST", "/v1/datasets?name=tl&index=grid",
		pointsCSV(t, testPoints(t, 1500)), http.StatusCreated)
	ds := doc["id"].(string)

	c.submitJob(ds, `{"variants":[{"eps":2,"minpts":4}],"tiles":-1}`, http.StatusBadRequest)

	labels := map[int][]byte{}
	for _, tiles := range []int{4, 1} {
		job := fmt.Sprintf(`{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4}],"tiles":%d}`, tiles)
		sub := c.submitJob(ds, job, http.StatusAccepted)
		done := c.waitDone(sub["id"].(string))
		if done["state"] != stateDone {
			t.Fatalf("tiles=%d job finished %v (%v)", tiles, done["state"], done["error"])
		}
		code, _, out := c.do("GET", "/v1/jobs/"+sub["id"].(string)+"/labels?variant=1", nil)
		if code != http.StatusOK {
			t.Fatalf("tiles=%d labels = %d: %s", tiles, code, out)
		}
		labels[tiles] = out
	}
	if !bytes.Equal(labels[4], labels[1]) {
		t.Error("tiles=4 job produced different labels than tiles=1")
	}
}

// TestBackpressure429 pins the bounded-queue contract: the QueueDepth+1-th
// submission is rejected with 429 and a Retry-After hint, and canceling a
// queued job frees its slot.
func TestBackpressure429(t *testing.T) {
	s, c := newTestServer(t, Config{
		Threads:     1,
		QueueDepth:  2,
		BatchWindow: time.Hour, // jobs stay queued until drain seals the window
		Runners:     1,
	})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 200)), http.StatusCreated)

	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4}]}`, http.StatusAccepted)
	c.submitJob("d1", `{"variants":[{"eps":3,"minpts":4}]}`, http.StatusAccepted)

	code, hdr, body := c.do("POST", "/v1/datasets/d1/jobs", []byte(`{"variants":[{"eps":4,"minpts":4}]}`))
	if code != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429; body: %s", code, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("429 Retry-After = %q, want an integer >= 1", hdr.Get("Retry-After"))
	}
	if got := s.ctrs.jobsRejected.Load(); got != 1 {
		t.Errorf("jobsRejected = %d", got)
	}

	// Canceling a queued job releases its admission slot.
	c.doJSON("DELETE", "/v1/jobs/j1", nil, http.StatusOK)
	doc := c.submitJob("d1", `{"variants":[{"eps":4,"minpts":4}]}`, http.StatusAccepted)
	if doc["state"] != stateQueued {
		t.Errorf("resubmit state = %v", doc["state"])
	}
}

// TestRetryAfterSeconds pins the hint's rounding contract: a sub-second
// batch window must not truncate to Retry-After: 0 (which many clients
// read as "retry immediately", defeating the backoff), and fractional
// windows round up so the hinted wait always covers the window.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		window time.Duration
		want   int
	}{
		{0, 1},
		{50 * time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2*time.Second + time.Millisecond, 3},
	} {
		s := &Server{cfg: Config{BatchWindow: tc.window}}
		if got := s.retryAfterSeconds(); got != tc.want {
			t.Errorf("retryAfterSeconds(window=%v) = %d, want %d", tc.window, got, tc.want)
		}
	}
}

// TestDrainingResponsesCarryRetryAfter: every 503 rejected during drain —
// upload, append, job submit — must carry a Retry-After hint of at least
// one second, so retrying clients and load balancers actually back off.
func TestDrainingResponsesCarryRetryAfter(t *testing.T) {
	s, c := newTestServer(t, Config{Threads: 1, BatchWindow: 1500 * time.Millisecond})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 200)), http.StatusCreated)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, tc := range []struct {
		name, method, path string
		body               []byte
	}{
		{"upload", "POST", "/v1/datasets", pointsCSV(t, testPoints(t, 10))},
		{"append", "POST", "/v1/datasets/d1/points", pointsCSV(t, testPoints(t, 10))},
		{"submit", "POST", "/v1/datasets/d1/jobs", []byte(`{"variants":[{"eps":2,"minpts":4}]}`)},
	} {
		code, hdr, body := c.do(tc.method, tc.path, tc.body)
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s while draining = %d, want 503; body: %s", tc.name, code, body)
			continue
		}
		// BatchWindow 1.5s rounds up: the ceil is observable on the wire.
		if ra := hdr.Get("Retry-After"); ra != "2" {
			t.Errorf("%s 503 Retry-After = %q, want \"2\"", tc.name, ra)
		}
	}
}

// TestJobDeadline: a job whose deadline expires while queued fails with a
// deadline error and releases its queue slot.
func TestJobDeadline(t *testing.T) {
	s, c := newTestServer(t, Config{
		Threads:     1,
		BatchWindow: time.Hour,
		Runners:     1,
	})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 200)), http.StatusCreated)

	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4}],"timeout_ms":30}`, http.StatusAccepted)
	doc := c.waitDone("j1")
	if doc["state"] != stateFailed {
		t.Fatalf("state = %v, want failed", doc["state"])
	}
	if !strings.Contains(doc["error"].(string), "deadline") {
		t.Errorf("error = %v", doc["error"])
	}
	if got := s.queueDepth(); got != 0 {
		t.Errorf("queue depth after expiry = %d", got)
	}
	if got := s.ctrs.jobsFailed.Load(); got != 1 {
		t.Errorf("jobsFailed = %d", got)
	}
}

// TestCancelMidRun submits a deliberately heavy job, waits until it is
// running, cancels it, and requires the server to drain promptly — i.e. the
// cancel reached the in-flight ClusterVariants run through the batch context.
func TestCancelMidRun(t *testing.T) {
	s, c := newTestServer(t, Config{Threads: 1, Runners: 1})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 20000)), http.StatusCreated)

	variants := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		variants = append(variants, fmt.Sprintf(`{"eps":%d,"minpts":4}`, 6+i))
	}
	c.submitJob("d1", `{"variants":[`+strings.Join(variants, ",")+`]}`, http.StatusAccepted)

	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := c.doJSON("GET", "/v1/jobs/j1", nil, http.StatusOK)
		if doc["state"] == stateRunning {
			break
		}
		if doc["state"] != stateQueued {
			t.Fatalf("job reached %v before it could be canceled mid-run", doc["state"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	doc := c.doJSON("DELETE", "/v1/jobs/j1", nil, http.StatusOK)
	if doc["state"] != stateCanceled {
		t.Fatalf("state after cancel = %v", doc["state"])
	}

	// The canceled run must abort: drain completes long before the full
	// 10-variant sweep over 20k points would.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain after cancel: %v", err)
	}
	if got := s.ctrs.jobsCompleted.Load(); got != 0 {
		t.Errorf("jobsCompleted = %d after cancel", got)
	}
	if got := s.ctrs.jobsCanceled.Load(); got != 1 {
		t.Errorf("jobsCanceled = %d", got)
	}

	// No labels for a canceled job.
	code, _, _ := c.do("GET", "/v1/jobs/j1/labels", nil)
	if code != http.StatusConflict {
		t.Errorf("labels after cancel = %d, want 409", code)
	}
}

// TestCoalescingWindow: two jobs for the same dataset submitted within the
// batching window share one ClusterVariants run over the union of their
// variants, observable in the job documents, the shared trace, and the
// batch counters — and their labels match a direct union run exactly.
func TestCoalescingWindow(t *testing.T) {
	pts := testPoints(t, 2000)
	s, c := newTestServer(t, Config{
		Threads:     1,
		BatchWindow: time.Second,
		Runners:     1,
	})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, pts), http.StatusCreated)

	a := c.submitJob("d1", `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4}]}`, http.StatusAccepted)
	b := c.submitJob("d1", `{"variants":[{"eps":3,"minpts":4},{"eps":4,"minpts":4}]}`, http.StatusAccepted)
	if a["batch"] != b["batch"] {
		t.Fatalf("jobs not coalesced: batches %v vs %v", a["batch"], b["batch"])
	}

	da := c.waitDone(a["id"].(string))
	db := c.waitDone(b["id"].(string))
	for name, doc := range map[string]map[string]any{"a": da, "b": db} {
		if doc["state"] != stateDone {
			t.Fatalf("job %s: %v (%v)", name, doc["state"], doc["error"])
		}
		if got := doc["batch_jobs"].(float64); got != 2 {
			t.Errorf("job %s batch_jobs = %v, want 2", name, got)
		}
		// Union of {2/8, 3/4} and {3/4, 4/4} deduplicates to 3 variants.
		if got := doc["batch_variants"].(float64); got != 3 {
			t.Errorf("job %s batch_variants = %v, want 3", name, got)
		}
	}

	if got := s.ctrs.batchesRun.Load(); got != 1 {
		t.Errorf("batchesRun = %d, want 1", got)
	}
	if got := s.ctrs.jobsCoalesced.Load(); got != 2 {
		t.Errorf("jobsCoalesced = %d, want 2", got)
	}
	if got := s.ctrs.variantsRun.Load(); got != 3 {
		t.Errorf("variantsRun = %d, want 3 (union)", got)
	}

	// Coalesced jobs share one trace: the exports must be identical bytes.
	_, _, trA := c.do("GET", "/v1/jobs/"+a["id"].(string)+"/trace?format=text", nil)
	_, _, trB := c.do("GET", "/v1/jobs/"+b["id"].(string)+"/trace?format=text", nil)
	if !bytes.Equal(trA, trB) {
		t.Error("coalesced jobs returned different traces")
	}

	// Labels must equal a direct single-threaded run of the same union, in
	// admission order: [2/8, 3/4, 4/4].
	union := []vdbscan.Params{{Eps: 2, MinPts: 8}, {Eps: 3, MinPts: 4}, {Eps: 4, MinPts: 4}}
	direct, err := vdbscan.NewIndex(pts).ClusterVariants(union, vdbscan.WithThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	check := func(jobID string, variant, unionSlot int) {
		t.Helper()
		code, _, got := c.do("GET", fmt.Sprintf("/v1/jobs/%s/labels?variant=%d", jobID, variant), nil)
		if code != http.StatusOK {
			t.Fatalf("labels %s/%d = %d", jobID, variant, code)
		}
		var want bytes.Buffer
		if err := dataio.WriteLabelsCSV(&want, direct.Results[unionSlot].Clustering); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("labels %s/%d differ from direct union run slot %d", jobID, variant, unionSlot)
		}
	}
	check(a["id"].(string), 0, 0)
	check(a["id"].(string), 1, 1)
	check(b["id"].(string), 0, 1)
	check(b["id"].(string), 1, 2)
}

// TestConcurrentClients hammers the service with 8 parallel clients (the
// acceptance bar) and cross-checks every returned label set against a
// direct single-threaded ClusterVariants run of the same parameters. With
// batching off each job is its own run, so the results must be identical.
func TestConcurrentClients(t *testing.T) {
	const clients = 8
	pts := testPoints(t, 3000)
	_, c := newTestServer(t, Config{
		Threads:    1,
		QueueDepth: 64,
		Runners:    2,
	})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, pts), http.StatusCreated)

	idx := vdbscan.NewIndex(pts)
	paramsFor := func(i int) []vdbscan.Params {
		return []vdbscan.Params{
			{Eps: 2 + 0.25*float64(i), MinPts: 4},
			{Eps: 3 + 0.25*float64(i), MinPts: 8},
		}
	}
	want := make([][]bytes.Buffer, clients)
	for i := 0; i < clients; i++ {
		run, err := idx.ClusterVariants(paramsFor(i), vdbscan.WithThreads(1))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = make([]bytes.Buffer, len(run.Results))
		for v := range run.Results {
			if err := dataio.WriteLabelsCSV(&want[i][v], run.Results[v].Clustering); err != nil {
				t.Fatal(err)
			}
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps := paramsFor(i)
			specs := make([]string, len(ps))
			for v, p := range ps {
				specs[v] = fmt.Sprintf(`{"eps":%g,"minpts":%d}`, p.Eps, p.MinPts)
			}
			doc := c.submitJob("d1", `{"variants":[`+strings.Join(specs, ",")+`]}`, http.StatusAccepted)
			jobID := doc["id"].(string)
			done := c.waitDone(jobID)
			if done["state"] != stateDone {
				errs <- fmt.Errorf("client %d: job %s %v (%v)", i, jobID, done["state"], done["error"])
				return
			}
			for v := range ps {
				code, _, got := c.do("GET", fmt.Sprintf("/v1/jobs/%s/labels?variant=%d", jobID, v), nil)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d: labels %d", i, code)
					return
				}
				if !bytes.Equal(got, want[i][v].Bytes()) {
					errs <- fmt.Errorf("client %d variant %d: labels differ from direct run", i, v)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDrainStopsAdmissionAndFlushesRefreeze pins the SIGTERM semantics:
// draining rejects new work with 503 and folds staged appends into the
// index before Drain returns.
func TestDrainStopsAdmissionAndFlushesRefreeze(t *testing.T) {
	s, c := newTestServer(t, Config{
		Threads:        1,
		RefreezePoints: 1 << 20, // never auto-refreeze; drain must flush
	})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 1000)), http.StatusCreated)

	extra := testPoints(t, 1050)[1000:]
	app := c.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, extra), http.StatusAccepted)
	if got := app["staged"].(float64); got != 50 {
		t.Fatalf("staged = %v", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	doc := c.doJSON("GET", "/v1/datasets/d1", nil, http.StatusOK)
	if got := doc["points"].(float64); got != 1050 {
		t.Errorf("points after drain = %v, want 1050", got)
	}
	if got := doc["staged"].(float64); got != 0 {
		t.Errorf("staged after drain = %v, want 0", got)
	}
	if got := doc["version"].(float64); got != 2 {
		t.Errorf("version after drain = %v, want 2", got)
	}

	// Admission is closed.
	code, _, _ := c.do("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 10)))
	if code != http.StatusServiceUnavailable {
		t.Errorf("upload while draining = %d, want 503", code)
	}
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4}]}`, http.StatusServiceUnavailable)
	health := c.doJSON("GET", "/healthz", nil, http.StatusOK)
	if health["status"] != "draining" {
		t.Errorf("healthz status = %v", health["status"])
	}
}

// TestBackgroundRefreeze: appends crossing the threshold trigger an async
// index rebuild that installs a new version with no staged leftovers.
func TestBackgroundRefreeze(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1, RefreezePoints: 200})
	all := testPoints(t, 750)
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, all[:500]), http.StatusCreated)

	app := c.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, all[500:]), http.StatusAccepted)
	if app["refreezing"] != true {
		t.Fatalf("append did not kick a re-freeze: %v", app)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		doc := c.doJSON("GET", "/v1/datasets/d1", nil, http.StatusOK)
		if doc["version"].(float64) == 2 && doc["refreezing"] == false {
			if got := doc["points"].(float64); got != 750 {
				t.Fatalf("points after re-freeze = %v, want 750", got)
			}
			if got := doc["staged"].(float64); got != 0 {
				t.Fatalf("staged after re-freeze = %v, want 0", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-freeze never installed: %v", doc)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsEndpoint: the text exposition carries both the server counters
// and the accumulated vdbscan work counters.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})
	c.doJSON("POST", "/v1/datasets", pointsCSV(t, testPoints(t, 1000)), http.StatusCreated)
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":4},{"eps":3,"minpts":4}]}`, http.StatusAccepted)
	c.waitDone("j1")

	code, _, body := c.do("GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	for _, want := range []string{
		"vdbscand_jobs_accepted_total 1",
		"vdbscand_jobs_completed_total 1",
		"vdbscand_batches_run_total 1",
		"vdbscand_variants_run_total 2",
		"vdbscand_datasets_created_total 1",
		"vdbscan_neighbor_searches_total ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Work counters must reflect the run (a 2-variant sweep does searches).
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "vdbscan_neighbor_searches_total ") {
			if strings.TrimPrefix(line, "vdbscan_neighbor_searches_total ") == "0" {
				t.Error("neighbor searches not accumulated into /metrics")
			}
		}
	}
}
