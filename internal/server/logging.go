package server

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// discardLogger is the default when Config.Logger is nil: a handler that
// reports every level disabled, so call sites can log unconditionally and
// the disabled path costs one interface call. (slog gained a stock discard
// handler after the Go version this module pins, hence the local one.)
func discardLogger() *slog.Logger {
	return slog.New(discardHandler{})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// reqIDKey carries the request ID through the handler chain so logs from
// admission, batching, and the run correlate back to the HTTP request that
// caused them.
type ctxKey int

const reqIDKey ctxKey = iota

// requestID returns the request's correlation ID, or "" outside a request.
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// statusWriter captures the response code for the access log. It forwards
// Flush so the SSE handler keeps working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withRequestID assigns each request a server-unique correlation ID
// (honoring an inbound X-Request-Id so multi-hop traces stay joined),
// stores it in the context, echoes it in the response, and emits one
// access-log line per request at debug level.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = "r" + itoa(s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqIDKey, id)))
		s.log.Debug("http request",
			"req", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "duration", time.Since(start))
	})
}

// itoa avoids fmt on the per-request path.
func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
