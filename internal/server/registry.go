package server

import (
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdbscan"
	"vdbscan/internal/persist"
)

// dataset is one uploaded point database and its frozen index. The index is
// immutable; appended points are staged and folded in by a re-freeze (a
// full rebuild installed atomically), so jobs always run against a
// consistent frozen snapshot and never against a half-built index.
type dataset struct {
	id      string
	name    string
	created time.Time
	r       int               // ε-search leaf occupancy used at (re)freeze
	kind    vdbscan.IndexKind // ε-search substrate used at (re)freeze

	mu         sync.Mutex
	points     []vdbscan.Point // points covered by the installed index
	index      *vdbscan.Index
	staged     []vdbscan.Point // appended, awaiting the next re-freeze
	version    int             // bumped at every install
	refreezing bool
	flushCh    chan struct{} // closed when the in-flight re-freeze installs
	deleted    bool

	// Durable-store state (see persistence.go); zero when the server runs
	// without a data dir or this dataset's persistence failed and degraded
	// it to memory-only.
	dir    string       // this dataset's directory under Config.DataDir
	wal    *persist.WAL // open segment wal.<walSeq>; nil until the first append
	walSeq int          // current WAL segment sequence
}

// snapshot returns the dataset's current frozen index, its point count, and
// the install version — the triple a batch run binds to.
func (d *dataset) snapshot() (*vdbscan.Index, int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.index, len(d.points), d.version
}

// pointsSnapshot returns the installed point set (the slice is replaced
// wholesale at re-freeze, never mutated in place, so sharing it is safe),
// its length, and the install version. The load-shed path binds to this
// instead of the frozen index: ρ-approximate DBSCAN builds its own grid.
func (d *dataset) pointsSnapshot() ([]vdbscan.Point, int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.points, len(d.points), d.version
}

// registry is the dataset store.
type registry struct {
	cfg Config
	mu  sync.Mutex
	m   map[string]*dataset
	seq atomic.Int64

	// onRefreeze, when set (by Server.New), observes each completed
	// re-freeze: the dataset, the point count the new index covers, and the
	// rebuild duration. Kept as a hook so the registry stays usable without
	// a metrics plane.
	onRefreeze func(d *dataset, points int, dur time.Duration)

	// onPersist, when set (by Server.New), observes each durable-store
	// operation: op is one of persistOpWrite, persistOpLoad,
	// persistOpWALReplay (WAL appends are not reported — they are
	// per-request, and the request path already carries latency metrics).
	onPersist func(d *dataset, op string, dur time.Duration)

	// refreezeBarrier, when set (tests only), is called by refreeze after
	// the rebuild input is captured and before the rebuild runs, off every
	// lock. Tests block in it to hold a dataset in the refreezing state
	// deterministically (e.g. the delete-mid-refreeze conflict test).
	refreezeBarrier func(d *dataset)

	log *slog.Logger
}

func newRegistry(cfg Config) *registry {
	log := cfg.Logger
	if log == nil {
		log = discardLogger()
	}
	return &registry{cfg: cfg, m: map[string]*dataset{}, log: log}
}

// create indexes points and registers the dataset. r == 0 falls back to
// Config.IndexR, then to the library default; kind follows the same
// per-upload-over-Config precedence (the zero kind is the R-tree, which is
// also the library default, so Config.IndexKind alone decides).
func (g *registry) create(name string, points []vdbscan.Point, r int, kind vdbscan.IndexKind) (*dataset, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("dataset has no points")
	}
	if r == 0 {
		r = g.cfg.IndexR
	}
	var opts []vdbscan.IndexOption
	if r > 0 {
		opts = append(opts, vdbscan.WithR(r))
	}
	if kind != vdbscan.IndexRTree {
		opts = append(opts, vdbscan.WithIndexKind(kind))
	}
	d := &dataset{
		id:      fmt.Sprintf("d%d", g.seq.Add(1)),
		name:    name,
		created: time.Now(),
		r:       r,
		kind:    kind,
		points:  points,
		index:   vdbscan.NewIndex(points, opts...),
		version: 1,
	}
	if d.name == "" {
		d.name = d.id
	}
	g.persistCreate(d)
	g.mu.Lock()
	g.m[d.id] = d
	g.mu.Unlock()
	return d, nil
}

func (g *registry) get(id string) (*dataset, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	d, ok := g.m[id]
	return d, ok
}

// Registry mutation errors; handlers.go maps them onto the API surface
// (404 not_found, 409 conflict).
var (
	errNoDataset      = errors.New("no such dataset")
	errRefreezing     = errors.New("dataset re-freeze in flight")
	errDatasetDeleted = errors.New("dataset deleted")
)

// delete removes the dataset, unless a background re-freeze is installing a
// new index for it — deleting the on-disk snapshot out from under that
// install used to surface as a 500-class internal race; now it is an
// explicit errRefreezing conflict the client can retry after the install.
// Lock order is g.mu then d.mu, the same nesting loadAll uses; refreeze
// never holds d.mu while taking g.mu, so this cannot deadlock.
func (g *registry) delete(id string) error {
	g.mu.Lock()
	d, ok := g.m[id]
	if !ok {
		g.mu.Unlock()
		return errNoDataset
	}
	d.mu.Lock()
	if d.refreezing {
		d.mu.Unlock()
		g.mu.Unlock()
		return errRefreezing
	}
	d.deleted = true
	g.persistDelete(d)
	d.mu.Unlock()
	delete(g.m, id)
	g.mu.Unlock()
	return nil
}

func (g *registry) list() []*dataset {
	g.mu.Lock()
	out := make([]*dataset, 0, len(g.m))
	for _, d := range g.m {
		out = append(out, d)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (g *registry) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// append stages points onto d and, once the staged backlog reaches the
// re-freeze threshold, kicks a background re-freeze that rebuilds the index
// over points+staged and installs it atomically. Returns the staged count
// and whether a re-freeze is now in flight. An append that loses the race
// with a concurrent delete gets errDatasetDeleted (409 conflict at the
// API): staging points — and writing WAL records — onto a dataset whose
// directory was just removed would silently drop them.
func (g *registry) append(d *dataset, pts []vdbscan.Point, ctrs *counters) (staged int, refreezing bool, err error) {
	d.mu.Lock()
	if d.deleted {
		d.mu.Unlock()
		return 0, false, errDatasetDeleted
	}
	d.staged = append(d.staged, pts...)
	g.walAppend(d, pts) // under d.mu: WAL record order matches d.staged
	staged = len(d.staged)
	kick := staged >= g.cfg.RefreezePoints && !d.refreezing
	if kick {
		d.refreezing = true
		d.flushCh = make(chan struct{})
	}
	refreezing = d.refreezing
	d.mu.Unlock()
	if kick {
		go g.refreeze(d, ctrs)
	}
	return staged, refreezing, nil
}

// refreeze rebuilds d's index including every point staged at the moment
// the rebuild starts. Points appended during the rebuild stay staged for
// the next one.
func (g *registry) refreeze(d *dataset, ctrs *counters) {
	began := time.Now()
	d.mu.Lock()
	base, add := d.points, d.staged
	// Rotate the WAL in the same critical section that captures the
	// rebuild's input: the closed segment holds exactly add, so the
	// snapshot written after install can fold it and nothing else.
	folded := g.rotateWAL(d)
	d.mu.Unlock()

	if g.refreezeBarrier != nil {
		g.refreezeBarrier(d)
	}

	combined := make([]vdbscan.Point, 0, len(base)+len(add))
	combined = append(combined, base...)
	combined = append(combined, add...)
	var opts []vdbscan.IndexOption
	if d.r > 0 {
		opts = append(opts, vdbscan.WithR(d.r))
	}
	if d.kind != vdbscan.IndexRTree {
		opts = append(opts, vdbscan.WithIndexKind(d.kind))
	}
	idx := vdbscan.NewIndex(combined, opts...) // the expensive part, off-lock

	d.mu.Lock()
	d.points = combined
	d.index = idx
	d.staged = d.staged[len(add):]
	d.version++
	d.refreezing = false
	ch := d.flushCh
	d.flushCh = nil
	d.mu.Unlock()
	g.persistInstall(d, idx, folded)
	if ctrs != nil {
		ctrs.refreezes.Add(1)
	}
	if g.onRefreeze != nil {
		g.onRefreeze(d, len(combined), time.Since(began))
	}
	close(ch)
}

// flushRefreezes folds every dataset's staged points in and waits for all
// in-flight re-freezes — the drain path's "no appended point is silently
// dropped" guarantee.
func (g *registry) flushRefreezes() {
	for _, d := range g.list() {
		g.flushDataset(d)
	}
}

// flushDataset drives one dataset to the staged-empty, no-refreeze-in-flight
// state.
func (g *registry) flushDataset(d *dataset) {
	for {
		d.mu.Lock()
		switch {
		case d.refreezing:
			ch := d.flushCh
			d.mu.Unlock()
			<-ch // wait for the install, then re-check for new staging
		case len(d.staged) > 0:
			d.refreezing = true
			d.flushCh = make(chan struct{})
			d.mu.Unlock()
			g.refreeze(d, nil)
		default:
			d.mu.Unlock()
			return
		}
	}
}
