package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	rtpprof "runtime/pprof"
	"time"
)

// AdminHandler returns the operator-facing surface, meant for a separate
// listener (an internal port, never the service port): the full
// net/http/pprof suite, a runtime-stats JSON endpoint, a plain-text
// goroutine dump, plus /metrics and /healthz so an operator pointed at the
// admin port alone can see everything.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /admin/runtime", s.handleAdminRuntime)
	mux.HandleFunc("GET /admin/goroutines", handleGoroutineDump)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// runtimeDoc is the /admin/runtime JSON shape: the numbers an operator
// checks before reaching for a profile.
type runtimeDoc struct {
	GoVersion     string  `json:"go_version"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Goroutines    int     `json:"goroutines"`
	HeapAllocMB   float64 `json:"heap_alloc_mb"`
	HeapInuseMB   float64 `json:"heap_inuse_mb"`
	SysMB         float64 `json:"sys_mb"`
	NumGC         uint32  `json:"num_gc"`
	GCPauseMS     float64 `json:"gc_pause_total_ms"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	StartTime     string  `json:"start_time"`
	Draining      bool    `json:"draining"`
	QueueDepth    int     `json:"queue_depth"`
}

func (s *Server) handleAdminRuntime(w http.ResponseWriter, r *http.Request) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const mb = 1 << 20
	writeJSON(w, http.StatusOK, runtimeDoc{
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Goroutines:    runtime.NumGoroutine(),
		HeapAllocMB:   float64(ms.HeapAlloc) / mb,
		HeapInuseMB:   float64(ms.HeapInuse) / mb,
		SysMB:         float64(ms.Sys) / mb,
		NumGC:         ms.NumGC,
		GCPauseMS:     float64(ms.PauseTotalNs) / 1e6,
		UptimeSeconds: time.Since(s.start).Seconds(),
		StartTime:     s.start.UTC().Format(time.RFC3339Nano),
		Draining:      s.draining.Load(),
		QueueDepth:    s.queueDepth(),
	})
}

// handleGoroutineDump writes the full stacks of every goroutine — the
// "what is the server stuck on" endpoint, cheaper to ask for than a pprof
// profile and readable without tooling.
func handleGoroutineDump(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rtpprof.Lookup("goroutine").WriteTo(w, 2) //nolint:errcheck // client gone
}
