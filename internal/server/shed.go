package server

import (
	"time"

	"vdbscan"
	"vdbscan/internal/approx"
	"vdbscan/internal/metrics"
)

// Load shedding: when the admission backlog reaches Config.ShedThreshold,
// jobs from tenants that opted in (TenantConfig.AllowApprox, or a per-job
// "allow_approx" request flag) are answered by ρ-approximate DBSCAN
// (internal/approx, Gan & Tao's grid) instead of joining the exact queue.
// A shed job still goes through the same admission gate — draining checks,
// the queue-depth bound, the tenant's caps — and still runs on the shared
// runner pool as a batch; only the clustering kernel differs. Its results
// carry `"quality": "approx"` in the job document so no caller can mistake
// a degraded answer for an exact one, and the sandwich guarantee
// DBSCAN(ε) ⊆ Approx(ε,ρ) ⊆ DBSCAN(ε(1+ρ)) bounds how degraded it is.

// indexLabelApprox is the {index} metric-label value for shed runs: the run
// used the ρ-grid, not the dataset's frozen index.
const indexLabelApprox = "approx"

// qualityApprox tags shed results in job documents. Exact jobs omit the
// field entirely, so pre-multitenancy clients never see it.
const qualityApprox = "approx"

// shouldShed decides at submission whether this job is served approximately:
// shedding is configured, the caller opted in, and the backlog has crossed
// the pressure threshold.
func (s *Server) shouldShed(tn *tenant, reqOptIn bool) bool {
	return s.cfg.ShedThreshold > 0 &&
		(tn.cfg.AllowApprox || reqOptIn) &&
		s.queueDepth() >= s.cfg.ShedThreshold
}

// runApproxBatch executes one shed batch: every union variant runs
// ρ-approximate DBSCAN over the dataset's current points. Same job
// lifecycle as the exact path — queue-slot release, running/terminal SSE
// frames, work metering, quota charging — so clients and the ledger cannot
// tell the paths apart except by the quality tag (and the latency).
func (s *Server) runApproxBatch(b *batch) {
	defer b.cancel()
	jobs, union := b.members()

	released := 0
	for _, j := range jobs {
		if j.leftQueue.CompareAndSwap(false, true) {
			released++
		}
	}
	if released > 0 {
		s.jobLeftQueue(released)
	}

	var live []*job
	for _, j := range jobs {
		if j.setRunning() {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}

	d, ok := s.registry.get(b.datasetID)
	if !ok {
		s.failBatch(live, "dataset deleted before the job ran")
		return
	}
	pts, points, version := d.pointsSnapshot()

	ob := s.mx.batchObserver(b.datasetID, indexLabelApprox, labelNA)
	runStart := time.Now()
	for _, j := range live {
		ob.queueWait.Observe(runStart.Sub(j.created).Seconds())
		j.events.publish(evRunning, runningFrame{
			Job: j.id, Batch: b.id, Points: points, Version: version,
			Variants: len(union),
		}, true, false)
	}

	s.log.Info("approx batch run starting (load shed)",
		"batch", b.id, "dataset", b.datasetID, "jobs", len(live),
		"variants", len(union), "points", points, "rho", s.cfg.ShedRho)

	slotWork := make([]vdbscan.Work, len(union))
	slotRes := make([]*vdbscan.Clustering, len(union))
	slotDur := make([]time.Duration, len(union))
	var total vdbscan.Work
	for i, p := range union {
		if err := b.ctx.Err(); err != nil {
			s.failBatch(live, "canceled: "+err.Error())
			return
		}
		var m metrics.Counters
		vStart := time.Now()
		res, err := approx.Run(pts, approx.Params{
			Eps: p.Eps, MinPts: p.MinPts, Rho: s.cfg.ShedRho,
		}, &m)
		if err != nil {
			s.failBatch(live, "approx run: "+err.Error())
			return
		}
		slotDur[i] = time.Since(vStart)
		slotRes[i] = res
		slotWork[i] = m.Snapshot()
		total = total.Add(slotWork[i])
		ob.variantRun.Observe(slotDur[i].Seconds())
		if slotWork[i].NeighborSearches > 0 {
			ob.epsSearches.Observe(float64(slotWork[i].NeighborSearches))
			ob.candPerSearch.Observe(
				float64(slotWork[i].CandidatesExamined) / float64(slotWork[i].NeighborSearches))
		}
		pf := progressFrame{
			Batch: b.id, Done: i + 1, Total: len(union),
			Variant: i, FromScratch: true,
			DurationMS: float64(slotDur[i]) / float64(time.Millisecond),
			ElapsedMS:  float64(time.Since(runStart)) / float64(time.Millisecond),
		}
		for _, j := range live {
			pf.Job = j.id
			j.events.publish(evProgress, pf, false, false)
		}
	}
	runDur := time.Since(runStart)
	ob.batchRun.Observe(runDur.Seconds())
	s.ctrs.batchesRun.Add(1)
	s.ctrs.variantsRun.Add(int64(len(union)))
	s.addWork(total)
	b.setRun(points, version, []byte(`{"traceEvents":[]}`),
		[]byte("approx (load-shed) run: no execution trace recorded\n"))

	s.log.Info("approx batch run done",
		"batch", b.id, "dataset", b.datasetID, "duration", runDur,
		"variants", len(union), "searches", total.NeighborSearches)

	for _, j := range live {
		var jw vdbscan.Work
		outcomes := make([]variantOutcome, len(j.params))
		for i, slot := range j.slots {
			outcomes[i] = variantOutcome{
				Params:      union[slot],
				Clusters:    slotRes[slot].NumClusters,
				Noise:       slotRes[slot].NumNoise(),
				FromScratch: true,
				Duration:    slotDur[slot],
				clustering:  slotRes[slot],
			}
			jw = jw.Add(slotWork[slot])
		}
		j.setOutcomeMeta(qualityApprox, jw)
		if j.finish(stateDone, "", outcomes) {
			s.ctrs.jobsCompleted.Add(1)
			s.chargeJob(j, jw.NeighborSearches, jw.CandidatesExamined)
			b.leave(j)
		}
	}
}
