package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitJobV2 is submitJob on the /v2 surface.
func (c *testClient) submitJobV2(datasetID string, body string, wantCode int) map[string]any {
	c.t.Helper()
	return c.doJSON("POST", "/v2/datasets/"+datasetID+"/jobs", []byte(body), wantCode)
}

// waitDoneV2 long-polls the job on /v2 until it turns terminal, so the
// returned document carries the v2-only tenant/work/quality fields.
func (c *testClient) waitDoneV2(jobID string) map[string]any {
	c.t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		doc := c.doJSON("GET", "/v2/jobs/"+jobID+"?wait=10s", nil, http.StatusOK)
		switch doc["state"] {
		case stateDone, stateFailed, stateCanceled:
			return doc
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("job %s still %v after 2m", jobID, doc["state"])
		}
	}
}

// envelope decodes a v2 error body and returns (code, message, retry_after_s).
func envelope(t *testing.T, body []byte) (string, string, float64) {
	t.Helper()
	var doc struct {
		Error struct {
			Code        string  `json:"code"`
			Message     string  `json:"message"`
			RetryAfterS float64 `json:"retry_after_s"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("not an envelope: %q: %v", body, err)
	}
	if doc.Error.Code == "" {
		t.Fatalf("envelope without code: %q", body)
	}
	return doc.Error.Code, doc.Error.Message, doc.Error.RetryAfterS
}

func TestParseKeysJSON(t *testing.T) {
	good := `{"tenants":[
		{"id":"acme","key":"k1","rate_rps":10,"burst":20,"max_concurrent_jobs":4,"work_quota":1000,"allow_approx":true},
		{"id":"beta","key":"k2"}]}`
	cfgs, err := ParseKeysJSON(strings.NewReader(good))
	if err != nil {
		t.Fatalf("valid keys file rejected: %v", err)
	}
	if len(cfgs) != 2 || cfgs[0].ID != "acme" || cfgs[0].WorkQuota != 1000 || !cfgs[0].AllowApprox {
		t.Fatalf("parsed = %+v", cfgs)
	}

	bad := map[string]string{
		"unknown field":  `{"tenants":[{"id":"a","key":"k","typo":1}]}`,
		"empty id":       `{"tenants":[{"id":"","key":"k"}]}`,
		"empty key":      `{"tenants":[{"id":"a","key":""}]}`,
		"duplicate id":   `{"tenants":[{"id":"a","key":"k1"},{"id":"a","key":"k2"}]}`,
		"duplicate key":  `{"tenants":[{"id":"a","key":"k"},{"id":"b","key":"k"}]}`,
		"reserved id":    `{"tenants":[{"id":"anonymous","key":"k"}]}`,
		"negative quota": `{"tenants":[{"id":"a","key":"k","work_quota":-1}]}`,
		"no tenants":     `{"tenants":[]}`,
	}
	for name, in := range bad {
		if _, err := ParseKeysJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %s", name, in)
		}
	}
}

// TestAuthRequired pins the gate: with keys configured, an unauthenticated
// request is a 401 on both surfaces (envelope on v2, legacy flat doc on
// v1), and both Authorization: Bearer and X-Api-Key authenticate.
func TestAuthRequired(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1, Tenants: []TenantConfig{
		{ID: "acme", Key: "k-acme"},
	}})

	code, _, body := c.do("GET", "/v2/datasets", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v2 = %d, want 401; body %s", code, body)
	}
	if ec, _, _ := envelope(t, body); ec != errCodeUnauthorized {
		t.Errorf("code = %q, want %q", ec, errCodeUnauthorized)
	}

	code, _, body = c.do("GET", "/v1/datasets", nil)
	if code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /v1 = %d, want 401", code)
	}
	if !bytes.Contains(body, []byte(`"error": "`)) || bytes.Contains(body, []byte(`"code"`)) {
		t.Errorf("/v1 401 body is not the legacy flat document: %s", body)
	}

	if code, _, body = c.withKey("wrong").do("GET", "/v2/datasets", nil); code != http.StatusUnauthorized {
		t.Errorf("bad key = %d, want 401; body %s", code, body)
	}
	if code, _, _ = c.withKey("k-acme").do("GET", "/v2/datasets", nil); code != http.StatusOK {
		t.Errorf("bearer key = %d, want 200", code)
	}

	req, err := http.NewRequest("GET", c.base+"/v2/datasets", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Api-Key", "k-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("X-Api-Key = %d, want 200", resp.StatusCode)
	}

	// /metrics and /healthz stay open: scrapers and probes carry no keys.
	if code, _, _ = c.do("GET", "/healthz", nil); code != http.StatusOK {
		t.Errorf("healthz behind auth = %d, want 200", code)
	}
	if code, _, _ = c.do("GET", "/metrics", nil); code != http.StatusOK {
		t.Errorf("metrics behind auth = %d, want 200", code)
	}
}

// TestErrorEnvelopeGoldens pins both error formats byte-for-byte: the v2
// envelope and the legacy v1 flat document for the same miss.
func TestErrorEnvelopeGoldens(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})

	code, _, body := c.do("GET", "/v2/jobs/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET /v2/jobs/nope = %d, want 404", code)
	}
	want := "{\n  \"error\": {\n    \"code\": \"not_found\",\n    \"message\": \"no job \\\"nope\\\"\"\n  }\n}\n"
	if string(body) != want {
		t.Errorf("v2 envelope drifted:\n--- got ---\n%s\n--- want ---\n%s", body, want)
	}

	code, _, body = c.do("GET", "/v1/jobs/nope", nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET /v1/jobs/nope = %d, want 404", code)
	}
	wantV1 := "{\n  \"error\": \"no job \\\"nope\\\"\"\n}\n"
	if string(body) != wantV1 {
		t.Errorf("v1 legacy error drifted:\n--- got ---\n%s\n--- want ---\n%s", body, wantV1)
	}
}

// TestV2JobDocGolden golden-compares the v2 job document: same shape as v1
// plus tenant and work.
func TestV2JobDocGolden(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1})
	csv := pointsCSV(t, testPoints(t, 400))
	ds := c.doJSON("POST", "/v2/datasets?name=golden", csv, http.StatusCreated)
	sub := c.submitJobV2(ds["id"].(string),
		`{"variants":[{"eps":0.25,"minpts":4},{"eps":0.3,"minpts":4}]}`, http.StatusAccepted)
	done := c.waitDoneV2(sub["id"].(string))
	checkGolden(t, "job_done_v2.golden.json", done)
}

// TestQuotaChargesMatchWork pins the metering identity end to end: the
// charge in the job document equals its eps-searches + candidates exactly,
// the tenant ledger equals the charge, and the next submit over quota is a
// 429 quota_exhausted with a Retry-After.
func TestQuotaChargesMatchWork(t *testing.T) {
	_, tc := newTestServer(t, Config{Threads: 1, Tenants: []TenantConfig{
		{ID: "metered", Key: "k-m", WorkQuota: 1}, // any finished job exhausts it
	}})
	c := tc.withKey("k-m")

	csv := pointsCSV(t, testPoints(t, 400))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	sub := c.submitJobV2(ds["id"].(string),
		`{"variants":[{"eps":0.25,"minpts":4},{"eps":0.3,"minpts":4}]}`, http.StatusAccepted)
	done := c.waitDoneV2(sub["id"].(string))
	if done["state"] != stateDone {
		t.Fatalf("job = %v", done)
	}
	if done["tenant"] != "metered" {
		t.Errorf("tenant = %v, want metered", done["tenant"])
	}

	work, ok := done["work"].(map[string]any)
	if !ok {
		t.Fatalf("done job has no work document: %v", done)
	}
	searches := int64(work["eps_searches"].(float64))
	candidates := int64(work["candidates_examined"].(float64))
	charge := int64(work["charge"].(float64))
	if searches <= 0 || candidates <= 0 {
		t.Fatalf("work counters empty: %+v", work)
	}
	if charge != searches+candidates {
		t.Fatalf("charge %d != eps_searches %d + candidates %d", charge, searches, candidates)
	}

	self := c.doJSON("GET", "/v2/tenants/self", nil, http.StatusOK)
	usage := self["usage"].(map[string]any)
	if got := int64(usage["work_charged"].(float64)); got != charge {
		t.Errorf("ledger work_charged = %d, want exactly the job's charge %d", got, charge)
	}
	if got := int64(usage["eps_searches"].(float64)); got != searches {
		t.Errorf("ledger eps_searches = %d, want %d", got, searches)
	}
	if got := int64(usage["jobs_charged"].(float64)); got != 1 {
		t.Errorf("jobs_charged = %d, want 1", got)
	}
	if usage["quota_exhausted"] != true {
		t.Errorf("quota_exhausted = %v, want true", usage["quota_exhausted"])
	}

	code, hdr, body := c.do("POST", "/v2/datasets/"+ds["id"].(string)+"/jobs",
		[]byte(`{"variants":[{"eps":0.25,"minpts":4}]}`))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429; body %s", code, body)
	}
	ec, msg, retry := envelope(t, body)
	if ec != errCodeQuotaExhausted {
		t.Errorf("code = %q, want %q", ec, errCodeQuotaExhausted)
	}
	if !strings.Contains(msg, "metered") {
		t.Errorf("message %q should name the tenant", msg)
	}
	if hdr.Get("Retry-After") == "" || retry <= 0 {
		t.Errorf("over-quota 429 lacks Retry-After (header %q, body %v)", hdr.Get("Retry-After"), retry)
	}
}

// TestTenantIsolationConcurrent submits jobs as two tenants against the
// same dataset, 8 ways concurrently, and checks neither can see the
// other's jobs and every charge lands on the right ledger.
func TestTenantIsolationConcurrent(t *testing.T) {
	_, tc := newTestServer(t, Config{Threads: 1, Runners: 2, Tenants: []TenantConfig{
		{ID: "alpha", Key: "k-a"},
		{ID: "bravo", Key: "k-b"},
	}})
	alpha, bravo := tc.withKey("k-a"), tc.withKey("k-b")

	csv := pointsCSV(t, testPoints(t, 300))
	ds := alpha.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	dsID := ds["id"].(string)

	const perTenant = 4
	jobs := map[string][]string{} // tenant id -> job ids
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < perTenant; i++ {
		for _, tn := range []struct {
			id string
			c  *testClient
		}{{"alpha", alpha}, {"bravo", bravo}} {
			wg.Add(1)
			go func(eps float64) {
				defer wg.Done()
				sub := tn.c.submitJobV2(dsID,
					fmt.Sprintf(`{"variants":[{"eps":%g,"minpts":4}]}`, eps), http.StatusAccepted)
				mu.Lock()
				jobs[tn.id] = append(jobs[tn.id], sub["id"].(string))
				mu.Unlock()
			}(0.2 + 0.02*float64(i))
		}
	}
	wg.Wait()

	var charges = map[string]int64{}
	for id, cl := range map[string]*testClient{"alpha": alpha, "bravo": bravo} {
		for _, jobID := range jobs[id] {
			done := cl.waitDoneV2(jobID)
			if done["state"] != stateDone {
				t.Fatalf("%s job %s = %v", id, jobID, done)
			}
			if done["tenant"] != id {
				t.Errorf("job %s tenant = %v, want %s", jobID, done["tenant"], id)
			}
			charges[id] += int64(done["work"].(map[string]any)["charge"].(float64))
		}
	}

	// Each tenant's list holds exactly its own jobs; the other's IDs 404.
	for id, cl := range map[string]*testClient{"alpha": alpha, "bravo": bravo} {
		list := cl.doJSON("GET", "/v2/jobs", nil, http.StatusOK)
		var got []string
		for _, item := range list["jobs"].([]any) {
			got = append(got, item.(map[string]any)["id"].(string))
		}
		if len(got) != perTenant {
			t.Errorf("%s sees %d jobs %v, want its own %d", id, len(got), got, perTenant)
		}
		for _, jobID := range got {
			found := false
			for _, own := range jobs[id] {
				found = found || own == jobID
			}
			if !found {
				t.Errorf("%s sees foreign job %s", id, jobID)
			}
		}
		other := "bravo"
		if id == "bravo" {
			other = "alpha"
		}
		code, _, body := cl.do("GET", "/v2/jobs/"+jobs[other][0], nil)
		if code != http.StatusNotFound {
			t.Errorf("%s reading %s's job = %d, want 404; body %s", id, other, code, body)
		}
	}

	for id, cl := range map[string]*testClient{"alpha": alpha, "bravo": bravo} {
		self := cl.doJSON("GET", "/v2/tenants/self", nil, http.StatusOK)
		usage := self["usage"].(map[string]any)
		if got := int64(usage["work_charged"].(float64)); got != charges[id] {
			t.Errorf("%s ledger = %d, want the sum of its own jobs' charges %d", id, got, charges[id])
		}
		if got := int64(usage["jobs_charged"].(float64)); got != perTenant {
			t.Errorf("%s jobs_charged = %d, want %d", id, got, perTenant)
		}
	}
}

// TestJobTTLEviction runs a job with a tiny TTL and checks the result is
// reclaimed: GET turns 410 gone, the job leaves the list, and the eviction
// counter ticks.
func TestJobTTLEviction(t *testing.T) {
	_, c := newTestServer(t, Config{Threads: 1, JobTTL: 50 * time.Millisecond})
	csv := pointsCSV(t, testPoints(t, 200))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	sub := c.submitJobV2(ds["id"].(string), `{"variants":[{"eps":0.25,"minpts":4}]}`, http.StatusAccepted)
	jobID := sub["id"].(string)
	c.waitDoneV2(jobID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, body := c.do("GET", "/v2/jobs/"+jobID, nil)
		if code == http.StatusGone {
			if ec, msg, _ := envelope(t, body); ec != errCodeGone || !strings.Contains(msg, "evicted") {
				t.Errorf("410 body = %s, want code gone mentioning eviction", body)
			}
			break
		}
		if code != http.StatusOK {
			t.Fatalf("GET job pre-eviction = %d: %s", code, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never evicted")
		}
		time.Sleep(20 * time.Millisecond)
	}

	list := c.doJSON("GET", "/v2/jobs", nil, http.StatusOK)
	if jobs, _ := list["jobs"].([]any); len(jobs) != 0 {
		t.Errorf("evicted job still listed: %v", jobs)
	}
	_, _, metrics := c.do("GET", "/metrics", nil)
	if !strings.Contains(string(metrics), `vdbscand_jobs_evicted_total{tenant="anonymous"} 1`) {
		t.Errorf("eviction counter missing from /metrics")
	}

	// The /v1 surface reports the same eviction as a flat-doc 410.
	code, _, body := c.do("GET", "/v1/jobs/"+jobID, nil)
	if code != http.StatusGone || bytes.Contains(body, []byte(`"code"`)) {
		t.Errorf("/v1 evicted GET = %d %s, want flat 410", code, body)
	}
}

// TestLoadSheddingApprox holds an exact job in a long batching window so
// the queue is non-empty, then submits an opted-in job: it must come back
// done with quality "approx", retrievable labels, and a shed-counter tick,
// while the exact job keeps its slot.
func TestLoadSheddingApprox(t *testing.T) {
	_, c := newTestServer(t, Config{
		Threads:       1,
		BatchWindow:   time.Hour, // park the exact job so depth >= threshold
		ShedThreshold: 1,
	})
	csv := pointsCSV(t, testPoints(t, 300))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	dsID := ds["id"].(string)

	exact := c.submitJobV2(dsID, `{"variants":[{"eps":0.25,"minpts":4}]}`, http.StatusAccepted)
	shed := c.submitJobV2(dsID, `{"variants":[{"eps":0.25,"minpts":4}],"allow_approx":true}`, http.StatusAccepted)

	done := c.waitDoneV2(shed["id"].(string))
	if done["state"] != stateDone {
		t.Fatalf("shed job = %v", done)
	}
	if done["quality"] != qualityApprox {
		t.Fatalf("quality = %v, want %q", done["quality"], qualityApprox)
	}
	results := done["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	if clusters := results[0].(map[string]any)["clusters"].(float64); clusters <= 0 {
		t.Errorf("approx run found %v clusters, want > 0", clusters)
	}
	if work, ok := done["work"].(map[string]any); !ok || work["charge"].(float64) <= 0 {
		t.Errorf("shed job carries no work charge: %v", done["work"])
	}
	if code, _, body := c.do("GET", "/v2/jobs/"+shed["id"].(string)+"/labels?variant=0", nil); code != http.StatusOK {
		t.Errorf("labels after shed run = %d: %s", code, body)
	}

	// The parked exact job is untouched: still queued, no quality tag.
	if doc := c.doJSON("GET", "/v2/jobs/"+exact["id"].(string), nil, http.StatusOK); doc["state"] != stateQueued {
		t.Errorf("exact job state = %v, want still queued", doc["state"])
	} else if _, has := doc["quality"]; has {
		t.Errorf("exact job carries a quality tag: %v", doc)
	}

	_, _, metrics := c.do("GET", "/metrics", nil)
	if !strings.Contains(string(metrics), `vdbscand_jobs_shed_total{tenant="anonymous"} 1`) {
		t.Errorf("shed counter missing from /metrics")
	}
}

// TestDeleteMidRefreezeConflict drives the once-racy path deterministically
// with the registry's test barrier: a DELETE while the background re-freeze
// installs is an explicit 409 conflict, and succeeds after the install.
func TestDeleteMidRefreezeConflict(t *testing.T) {
	s, c := newTestServer(t, Config{Threads: 1, RefreezePoints: 4})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.registry.refreezeBarrier = func(d *dataset) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	csv := pointsCSV(t, testPoints(t, 100))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	dsID := ds["id"].(string)

	app := c.doJSON("POST", "/v2/datasets/"+dsID+"/points",
		[]byte("9,9\n9.1,9\n9,9.1\n9.1,9.1\n"), http.StatusAccepted)
	if app["refreezing"] != true {
		t.Fatalf("append did not trigger a re-freeze: %v", app)
	}
	<-entered

	code, hdr, body := c.do("DELETE", "/v2/datasets/"+dsID, nil)
	if code != http.StatusConflict {
		t.Fatalf("delete mid-refreeze = %d, want 409; body %s", code, body)
	}
	if ec, msg, _ := envelope(t, body); ec != errCodeConflict || !strings.Contains(msg, "re-freezing") {
		t.Errorf("409 body = %s, want conflict naming the re-freeze", body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("conflict response lacks Retry-After")
	}

	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _, body = c.do("DELETE", "/v2/datasets/"+dsID, nil)
		if code == http.StatusNoContent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delete still refused after install: %d %s", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAppendAfterDeleteConflict exercises the registry-level race directly:
// an append holding a dataset handle that loses to a delete is refused, not
// silently dropped.
func TestAppendAfterDeleteConflict(t *testing.T) {
	s, c := newTestServer(t, Config{Threads: 1})
	csv := pointsCSV(t, testPoints(t, 50))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	d, ok := s.registry.get(ds["id"].(string))
	if !ok {
		t.Fatal("dataset missing from registry")
	}
	if err := s.registry.delete(d.id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.registry.append(d, testPoints(t, 4), &s.ctrs); err != errDatasetDeleted {
		t.Fatalf("append after delete = %v, want errDatasetDeleted", err)
	}
}

// TestRateLimit pins the per-tenant token bucket: burst 1 admits one
// request, the next is a 429 rate_limited with a Retry-After.
func TestRateLimit(t *testing.T) {
	_, tc := newTestServer(t, Config{Threads: 1, Tenants: []TenantConfig{
		{ID: "slow", Key: "k-s", RateRPS: 0.0001, Burst: 1},
	}})
	c := tc.withKey("k-s")
	if code, _, body := c.do("GET", "/v2/jobs", nil); code != http.StatusOK {
		t.Fatalf("first request = %d: %s", code, body)
	}
	code, hdr, body := c.do("GET", "/v2/jobs", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429; body %s", code, body)
	}
	if ec, _, _ := envelope(t, body); ec != errCodeRateLimited {
		t.Errorf("code = %q, want %q", ec, errCodeRateLimited)
	}
	if hdr.Get("Retry-After") == "" {
		t.Errorf("rate-limited 429 lacks Retry-After")
	}
}

// TestConcurrentJobsCap pins the per-tenant concurrency gate with a job
// parked in a long batching window.
func TestConcurrentJobsCap(t *testing.T) {
	_, tc := newTestServer(t, Config{
		Threads:     1,
		BatchWindow: time.Hour,
		Tenants:     []TenantConfig{{ID: "capped", Key: "k-c", MaxConcurrentJobs: 1}},
	})
	c := tc.withKey("k-c")
	csv := pointsCSV(t, testPoints(t, 50))
	ds := c.doJSON("POST", "/v2/datasets", csv, http.StatusCreated)
	c.submitJobV2(ds["id"].(string), `{"variants":[{"eps":0.25,"minpts":4}]}`, http.StatusAccepted)

	code, _, body := c.do("POST", "/v2/datasets/"+ds["id"].(string)+"/jobs",
		[]byte(`{"variants":[{"eps":0.3,"minpts":4}]}`))
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit over job cap = %d, want 429; body %s", code, body)
	}
	if ec, msg, _ := envelope(t, body); ec != errCodeRateLimited || !strings.Contains(msg, "concurrent-jobs cap") {
		t.Errorf("429 body = %s, want rate_limited naming the cap", body)
	}
}
