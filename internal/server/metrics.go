package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"vdbscan"
	"vdbscan/internal/obs/prom"
)

// tilesLabel maps an effective tile request to the bounded label vocabulary
// of the tiled metrics dimension: the run either tiled, didn't, or let the
// library decide ("auto", which may resolve either way per run).
func tilesLabel(tiles int) string {
	switch {
	case tiles <= 0:
		return "auto"
	case tiles == 1:
		return "untiled"
	default:
		return "tiled"
	}
}

// labelNA marks a label dimension that does not apply to a family kept on
// the shared {dataset,index,tiled} schema (e.g. refreezes are not tiled).
const labelNA = "na"

// serverMetrics is the service's Prometheus exposition: the flat monotonic
// counters the server always had (now func-collected from the same
// atomics), labeled counters for the SSE plane, and the latency/work
// *distributions* the paper's throughput story actually rests on — queue
// wait, coalescing window, batch and per-variant run time, refreeze time,
// and per-variant ε-search work, each labeled by dataset, index kind
// (rtree/grid), and tiled so the tiled-vs-untiled and grid-vs-rtree
// speedups are scrapeable as separate series.
//
// Histogram observation is lock-free (see internal/obs/prom); the handles
// resolved per batch run are cached for the run, so instrumentation costs
// one map lookup per batch plus one Observe per event at job/variant
// granularity — never per ε-search.
type serverMetrics struct {
	reg *prom.Registry

	// Distributions over {dataset, index, tiled}.
	queueWait     *prom.Vec // vdbscand_job_queue_wait_seconds
	coalesceWin   *prom.Vec // vdbscand_batch_coalesce_window_seconds
	batchRun      *prom.Vec // vdbscand_batch_run_seconds
	variantRun    *prom.Vec // vdbscand_variant_run_seconds
	refreezeDur   *prom.Vec // vdbscand_dataset_refreeze_seconds
	epsSearches   *prom.Vec // vdbscand_variant_eps_searches
	candPerSearch *prom.Vec // vdbscand_variant_eps_candidates_per_search
	snapshotWrite *prom.Vec // vdbscand_snapshot_write_seconds
	snapshotLoad  *prom.Vec // vdbscand_snapshot_load_seconds
	walReplay     *prom.Vec // vdbscand_wal_replay_seconds

	// SSE broker counters.
	sseFrames  *prom.Vec // vdbscand_sse_frames_total{event}
	sseDropped *prom.Vec // vdbscand_sse_dropped_frames_total
	sseSubs    atomic.Int64

	// Multi-tenancy counters, all labeled by tenant so per-tenant usage,
	// throttling, and degradation are scrapeable series.
	tenantWork     *prom.Vec // vdbscand_tenant_work_charged_total{tenant}
	tenantSearches *prom.Vec // vdbscand_tenant_eps_searches_total{tenant}
	tenantJobs     *prom.Vec // vdbscand_tenant_jobs_charged_total{tenant}
	tenantRejected *prom.Vec // vdbscand_tenant_rejected_total{tenant,reason}
	jobsShed       *prom.Vec // vdbscand_jobs_shed_total{tenant}
	jobsEvicted    *prom.Vec // vdbscand_jobs_evicted_total{tenant}

	scrapes atomic.Int64
}

// batchObserver is the per-run bundle of resolved histogram children: one
// label lookup per family per batch, then lock-free Observe calls.
type batchObserver struct {
	queueWait, coalesceWin, batchRun, variantRun *prom.Metric
	epsSearches, candPerSearch                   *prom.Metric
}

func (m *serverMetrics) batchObserver(dataset, index, tiled string) batchObserver {
	return batchObserver{
		queueWait:     m.queueWait.With(dataset, index, tiled),
		coalesceWin:   m.coalesceWin.With(dataset, index, tiled),
		batchRun:      m.batchRun.With(dataset, index, tiled),
		variantRun:    m.variantRun.With(dataset, index, tiled),
		epsSearches:   m.epsSearches.With(dataset, index, tiled),
		candPerSearch: m.candPerSearch.With(dataset, index, tiled),
	}
}

// workBuckets scales ε-search counts: one variant can do anywhere from a
// handful to tens of millions of searches depending on dataset size and
// reuse, so the buckets are decade-ish exponential.
var workBuckets = prom.ExpBuckets(100, 4, 10) // 100 .. ~26M

// ratioBuckets cover candidates-per-search: 1 (perfect filtering) up to
// thousands (degenerate leaf scans).
var ratioBuckets = prom.ExpBuckets(1, 2, 12) // 1 .. 2048

// newServerMetrics builds the registry over the server's live state. The
// flat counter names predate this registry and are kept verbatim so
// existing scrapes and greps survive the exposition upgrade.
func newServerMetrics(s *Server) *serverMetrics {
	m := &serverMetrics{reg: prom.NewRegistry()}
	r := m.reg

	counterFunc := func(name, help string, v *atomic.Int64) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Load()) })
	}
	counterFunc("vdbscand_jobs_accepted_total", "Jobs admitted to the queue.", &s.ctrs.jobsAccepted)
	counterFunc("vdbscand_jobs_rejected_total", "Jobs rejected with 429 (queue full).", &s.ctrs.jobsRejected)
	counterFunc("vdbscand_jobs_completed_total", "Jobs finished successfully.", &s.ctrs.jobsCompleted)
	counterFunc("vdbscand_jobs_failed_total", "Jobs that failed (run error or deadline).", &s.ctrs.jobsFailed)
	counterFunc("vdbscand_jobs_canceled_total", "Jobs canceled by the client.", &s.ctrs.jobsCanceled)
	counterFunc("vdbscand_jobs_coalesced_total", "Jobs that shared their batch with another job.", &s.ctrs.jobsCoalesced)
	counterFunc("vdbscand_batches_run_total", "ClusterVariants batch runs executed.", &s.ctrs.batchesRun)
	counterFunc("vdbscand_variants_run_total", "Union variants executed across all batches.", &s.ctrs.variantsRun)
	counterFunc("vdbscand_dataset_refreezes_total", "Background dataset re-freezes installed.", &s.ctrs.refreezes)
	counterFunc("vdbscand_datasets_created_total", "Datasets ever created.", &s.ctrs.datasets)

	r.GaugeFunc("vdbscand_datasets_live", "Datasets currently registered.",
		func() float64 { return float64(s.registry.len()) })
	r.GaugeFunc("vdbscand_queue_depth", "Admitted jobs whose batch has not started running.",
		func() float64 { return float64(s.queueDepth()) })
	// Float seconds: the int truncation the old exposition had made uptime
	// read 0 for the whole first second, which is most of a smoke test.
	r.GaugeFunc("vdbscand_uptime_seconds", "Seconds since the server started (sub-second resolution).",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("vdbscand_start_time_seconds", "Unix time the server started, in seconds.",
		func() float64 { return float64(s.start.UnixNano()) / 1e9 })

	labels := []string{"dataset", "index", "tiled"}
	m.queueWait = r.Histogram("vdbscand_job_queue_wait_seconds",
		"Time a job spent between admission and its batch starting to run.",
		prom.DurationBuckets, labels...)
	m.coalesceWin = r.Histogram("vdbscand_batch_coalesce_window_seconds",
		"Time a batch spent open, collecting jobs, before its run started.",
		prom.DurationBuckets, labels...)
	m.batchRun = r.Histogram("vdbscand_batch_run_seconds",
		"Wall-clock duration of one ClusterVariants batch run.",
		prom.DurationBuckets, labels...)
	m.variantRun = r.Histogram("vdbscand_variant_run_seconds",
		"Response time of one variant inside a batch run.",
		prom.DurationBuckets, labels...)
	m.refreezeDur = r.Histogram("vdbscand_dataset_refreeze_seconds",
		"Duration of one background dataset re-freeze (index rebuild).",
		prom.DurationBuckets, labels...)
	m.epsSearches = r.Histogram("vdbscand_variant_eps_searches",
		"Eps-neighborhood searches performed by one variant execution.",
		workBuckets, labels...)
	m.candPerSearch = r.Histogram("vdbscand_variant_eps_candidates_per_search",
		"Mean candidates examined per eps-search in one variant execution.",
		ratioBuckets, labels...)
	m.snapshotWrite = r.Histogram("vdbscand_snapshot_write_seconds",
		"Duration of one durable dataset snapshot write (upload or re-freeze).",
		prom.DurationBuckets, labels...)
	m.snapshotLoad = r.Histogram("vdbscand_snapshot_load_seconds",
		"Duration of one snapshot load (mmap + validation) at startup.",
		prom.DurationBuckets, labels...)
	m.walReplay = r.Histogram("vdbscand_wal_replay_seconds",
		"Duration of one dataset's WAL backlog replay at startup.",
		prom.DurationBuckets, labels...)

	m.tenantWork = r.Counter("vdbscand_tenant_work_charged_total",
		"Work units (eps-searches + candidates examined) charged to each tenant's quota ledger.", "tenant")
	m.tenantSearches = r.Counter("vdbscand_tenant_eps_searches_total",
		"Eps-neighborhood searches metered to each tenant's finished jobs.", "tenant")
	m.tenantJobs = r.Counter("vdbscand_tenant_jobs_charged_total",
		"Finished jobs charged to each tenant's quota ledger.", "tenant")
	m.tenantRejected = r.Counter("vdbscand_tenant_rejected_total",
		"Requests rejected per tenant, by reason (rate, quota, concurrency, queue).", "tenant", "reason")
	m.jobsShed = r.Counter("vdbscand_jobs_shed_total",
		"Jobs answered by the load-shed approximate path instead of the exact queue.", "tenant")
	m.jobsEvicted = r.Counter("vdbscand_jobs_evicted_total",
		"Finished jobs reclaimed by the TTL eviction sweeper.", "tenant")

	m.sseFrames = r.Counter("vdbscand_sse_frames_total",
		"SSE frames published to job event streams, by frame event type.", "event")
	m.sseDropped = r.Counter("vdbscand_sse_dropped_frames_total",
		"SSE frames dropped because a subscriber's buffer was full (drop-oldest).")
	r.GaugeFunc("vdbscand_sse_subscribers", "Live SSE subscribers across all job streams.",
		func() float64 { return float64(m.sseSubs.Load()) })
	r.CounterFunc("vdbscand_metrics_scrapes_total", "Scrapes of this endpoint.",
		func() float64 { return float64(m.scrapes.Load()) })

	// The accumulated vdbscan work counters, same names as before.
	workFunc := func(name, help string, pick func(w workSnap) int64) {
		r.CounterFunc(name, help, func() float64 { return float64(pick(workSnap{s})) })
	}
	workFunc("vdbscan_neighbor_searches_total", "Eps-neighborhood searches across all runs.",
		func(w workSnap) int64 { return w.get().NeighborSearches })
	workFunc("vdbscan_candidates_examined_total", "Candidate points filtered across all runs.",
		func(w workSnap) int64 { return w.get().CandidatesExamined })
	workFunc("vdbscan_neighbors_found_total", "Neighbors found across all runs.",
		func(w workSnap) int64 { return w.get().NeighborsFound })
	workFunc("vdbscan_nodes_visited_total", "Index nodes visited across all runs.",
		func(w workSnap) int64 { return w.get().NodesVisited })
	workFunc("vdbscan_points_reused_total", "Points reused from completed variants.",
		func(w workSnap) int64 { return w.get().PointsReused })
	workFunc("vdbscan_clusters_reused_total", "Clusters reused from completed variants.",
		func(w workSnap) int64 { return w.get().ClustersReused })
	workFunc("vdbscan_clusters_destroyed_total", "Reused clusters destroyed by re-expansion.",
		func(w workSnap) int64 { return w.get().ClustersDestroyed })
	return m
}

// workSnap defers the work mutex to render time, once per scrape (not once
// per counter: the snapshot is cheap, but seven locks per scrape is silly).
// Each scrape is one Write call on one goroutine, so a plain cache is safe.
type workSnap struct{ s *Server }

func (w workSnap) get() vdbscan.Work { return w.s.workSnapshot() }

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mx.scrapes.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mx.reg.Write(w) //nolint:errcheck // client gone; nothing to do
}
