package server

import (
	"bufio"
	"fmt"
	"net/http"
	"time"
)

// handleMetrics exposes the server counters and the accumulated vdbscan
// work counters in the conventional one-`name value`-per-line text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriter(w)
	emit := func(name string, v int64) {
		fmt.Fprintf(bw, "%s %d\n", name, v)
	}
	emit("vdbscand_jobs_accepted_total", s.ctrs.jobsAccepted.Load())
	emit("vdbscand_jobs_rejected_total", s.ctrs.jobsRejected.Load())
	emit("vdbscand_jobs_completed_total", s.ctrs.jobsCompleted.Load())
	emit("vdbscand_jobs_failed_total", s.ctrs.jobsFailed.Load())
	emit("vdbscand_jobs_canceled_total", s.ctrs.jobsCanceled.Load())
	emit("vdbscand_jobs_coalesced_total", s.ctrs.jobsCoalesced.Load())
	emit("vdbscand_batches_run_total", s.ctrs.batchesRun.Load())
	emit("vdbscand_variants_run_total", s.ctrs.variantsRun.Load())
	emit("vdbscand_dataset_refreezes_total", s.ctrs.refreezes.Load())
	emit("vdbscand_datasets_created_total", s.ctrs.datasets.Load())
	emit("vdbscand_datasets_live", int64(s.registry.len()))
	emit("vdbscand_queue_depth", int64(s.queueDepth()))
	emit("vdbscand_uptime_seconds", int64(time.Since(s.start)/time.Second))

	work := s.workSnapshot()
	emit("vdbscan_neighbor_searches_total", work.NeighborSearches)
	emit("vdbscan_candidates_examined_total", work.CandidatesExamined)
	emit("vdbscan_neighbors_found_total", work.NeighborsFound)
	emit("vdbscan_nodes_visited_total", work.NodesVisited)
	emit("vdbscan_points_reused_total", work.PointsReused)
	emit("vdbscan_clusters_reused_total", work.ClustersReused)
	emit("vdbscan_clusters_destroyed_total", work.ClustersDestroyed)
	bw.Flush()
}
