package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestAdminSurface exercises the operator plane: pprof index, runtime
// stats JSON, the goroutine dump, and the shared /metrics + /healthz.
func TestAdminSurface(t *testing.T) {
	s := New(Config{Threads: 1})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.AdminHandler())
	t.Cleanup(ts.Close)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d: %.80s", code, body)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline = %d: %.80s", code, body)
	}

	code, body := get("/admin/runtime")
	if code != http.StatusOK {
		t.Fatalf("admin/runtime = %d", code)
	}
	var doc runtimeDoc
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("runtime doc: %v\n%s", err, body)
	}
	if doc.Goroutines < 1 || doc.GOMAXPROCS < 1 || doc.GoVersion == "" {
		t.Errorf("implausible runtime doc: %+v", doc)
	}
	if doc.UptimeSeconds <= 0 {
		t.Errorf("uptime = %g, want > 0", doc.UptimeSeconds)
	}

	if code, body := get("/admin/goroutines"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("goroutine dump = %d: %.80s", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "vdbscand_uptime_seconds") {
		t.Errorf("admin metrics = %d: %.120s", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("admin healthz = %d: %s", code, body)
	}
}

// TestRequestIDMiddleware: every service response carries a correlation ID,
// and an inbound X-Request-Id is honored.
func TestRequestIDMiddleware(t *testing.T) {
	s := New(Config{Threads: 1})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("response lacks X-Request-Id")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "corr-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id := resp2.Header.Get("X-Request-Id"); id != "corr-42" {
		t.Errorf("inbound request ID not echoed: %q", id)
	}
}
