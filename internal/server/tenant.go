package server

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Multi-tenancy: every request resolves to a tenant, and every job carries
// its tenant from admission to the quota ledger. With no keys configured
// the server runs open, exactly as it always has: every caller is the
// anonymous tenant, which has no limits. The moment at least one API key
// is configured, the data plane (every /v1 and /v2 route) requires a key —
// `Authorization: Bearer <key>` or `X-Api-Key: <key>` — and each key maps
// to a TenantConfig with its own rate, concurrency, and quota envelope.
// /metrics and /healthz stay open either way: scrapers and load balancers
// are not tenants.

// anonymousTenant is the identity of unauthenticated callers on a server
// with no keys configured.
const anonymousTenant = "anonymous"

// TenantConfig is one tenant's identity and limits, as loaded from the
// -keys-file / VDBSCAND_KEYS JSON:
//
//	{"tenants": [
//	  {"id": "acme", "key": "s3cret", "rate_rps": 50, "burst": 100,
//	   "max_concurrent_jobs": 8, "work_quota": 100000000, "allow_approx": true}
//	]}
//
// Zero limits mean unlimited; WorkQuota is measured in work units — the
// job's ε-neighborhood searches plus candidate points examined, the same
// counters /metrics has always exported per run.
type TenantConfig struct {
	// ID names the tenant in job documents, logs, and metric labels.
	ID string `json:"id"`
	// Key is the API key. Compared in constant time.
	Key string `json:"key"`
	// RateRPS is the request-admission token-bucket rate over the tenant's
	// data-plane requests. 0 = unlimited.
	RateRPS float64 `json:"rate_rps"`
	// Burst is the bucket depth; 0 derives max(1, ceil(RateRPS)).
	Burst int `json:"burst"`
	// MaxConcurrentJobs caps the tenant's live (queued or running) jobs.
	// 0 = unlimited.
	MaxConcurrentJobs int `json:"max_concurrent_jobs"`
	// WorkQuota is the total work-unit budget (ε-searches + candidates
	// examined, charged per finished job). Once the ledger reaches it,
	// submissions get 429 quota_exhausted. 0 = unlimited.
	WorkQuota int64 `json:"work_quota"`
	// AllowApprox opts the tenant into load shedding: when the queue is
	// past the pressure threshold its jobs may be served ρ-approximate
	// answers (tagged "quality":"approx") instead of queueing.
	AllowApprox bool `json:"allow_approx"`
}

// keysFile is the JSON shape of -keys-file / VDBSCAND_KEYS.
type keysFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// ParseKeysJSON reads and validates a keys document. It is the single
// loader for both the -keys-file file and the VDBSCAND_KEYS inline JSON.
func ParseKeysJSON(r io.Reader) ([]TenantConfig, error) {
	var kf keysFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&kf); err != nil {
		return nil, fmt.Errorf("keys: %w", err)
	}
	if len(kf.Tenants) == 0 {
		// An explicitly supplied keys document with nobody in it would
		// silently run the server open; that is always a config mistake.
		return nil, fmt.Errorf("keys: document has no tenants")
	}
	if err := validateTenants(kf.Tenants); err != nil {
		return nil, err
	}
	return kf.Tenants, nil
}

// validateTenants enforces the invariants the auth layer depends on: every
// tenant has an id and a key, both unique, neither reserved, no negative
// limits. Shared by ParseKeysJSON and New (a programmatic Config.Tenants
// gets the same guarantees).
func validateTenants(cfgs []TenantConfig) error {
	seenID := map[string]bool{}
	seenKey := map[string]bool{}
	for i, tc := range cfgs {
		if tc.ID == "" {
			return fmt.Errorf("keys: tenant %d has no id", i)
		}
		if tc.ID == anonymousTenant {
			return fmt.Errorf("keys: tenant id %q is reserved", anonymousTenant)
		}
		if tc.Key == "" {
			return fmt.Errorf("keys: tenant %q has no key", tc.ID)
		}
		if seenID[tc.ID] {
			return fmt.Errorf("keys: duplicate tenant id %q", tc.ID)
		}
		if seenKey[tc.Key] {
			return fmt.Errorf("keys: tenants share a key (second holder: %q)", tc.ID)
		}
		if tc.RateRPS < 0 || tc.Burst < 0 || tc.MaxConcurrentJobs < 0 || tc.WorkQuota < 0 {
			return fmt.Errorf("keys: tenant %q has a negative limit", tc.ID)
		}
		seenID[tc.ID] = true
		seenKey[tc.Key] = true
	}
	return nil
}

// tenant is one tenant's runtime state: the token bucket, the live-job
// gauge, and the quota ledger.
type tenant struct {
	cfg TenantConfig

	// Token bucket over data-plane requests; guarded by mu.
	mu     sync.Mutex
	tokens float64
	refill time.Time

	// Ledger. charged is the quota-relevant sum (searches + candidates);
	// the split is kept so /v2/tenants/self can show where the work went.
	charged    atomic.Int64
	searches   atomic.Int64
	candidates atomic.Int64
	jobsRun    atomic.Int64 // finished jobs charged to the ledger
	jobsShed   atomic.Int64 // jobs served approximate answers
	jobsLive   atomic.Int64 // queued or running right now
}

func newTenant(cfg TenantConfig) *tenant {
	t := &tenant{cfg: cfg, refill: time.Now()}
	t.tokens = float64(t.burst())
	return t
}

func (t *tenant) id() string { return t.cfg.ID }

func (t *tenant) burst() int {
	if t.cfg.Burst > 0 {
		return t.cfg.Burst
	}
	if b := int(t.cfg.RateRPS + 0.999); b > 1 {
		return b
	}
	return 1
}

// allowRequest takes one token from the tenant's bucket, refilling at
// RateRPS first. Unlimited tenants always pass.
func (t *tenant) allowRequest(now time.Time) bool {
	if t.cfg.RateRPS <= 0 {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tokens += now.Sub(t.refill).Seconds() * t.cfg.RateRPS
	if max := float64(t.burst()); t.tokens > max {
		t.tokens = max
	}
	t.refill = now
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// overQuota reports whether the ledger has consumed the tenant's work
// budget.
func (t *tenant) overQuota() bool {
	return t.cfg.WorkQuota > 0 && t.charged.Load() >= t.cfg.WorkQuota
}

// atJobCap reports whether the tenant has hit its concurrent-jobs cap.
func (t *tenant) atJobCap() bool {
	return t.cfg.MaxConcurrentJobs > 0 && t.jobsLive.Load() >= int64(t.cfg.MaxConcurrentJobs)
}

// tenantSet is the server's tenant registry. Immutable after New: key
// rotation is a restart (the set is tiny and the daemon drains cleanly).
type tenantSet struct {
	list []*tenant // every configured tenant, for the constant-time key scan
	byID map[string]*tenant
	anon *tenant
}

func newTenantSet(cfgs []TenantConfig) (*tenantSet, error) {
	if err := validateTenants(cfgs); err != nil {
		return nil, err
	}
	ts := &tenantSet{
		byID: make(map[string]*tenant, len(cfgs)+1),
		anon: newTenant(TenantConfig{ID: anonymousTenant}),
	}
	for _, tc := range cfgs {
		t := newTenant(tc)
		ts.list = append(ts.list, t)
		ts.byID[tc.ID] = t
	}
	ts.byID[anonymousTenant] = ts.anon
	return ts, nil
}

// authRequired reports whether the data plane demands a key (any key is
// configured).
func (ts *tenantSet) authRequired() bool { return len(ts.list) > 0 }

// authenticate resolves an API key to its tenant. The scan visits every
// configured tenant and compares in constant time regardless of where (or
// whether) the match lands, so response timing leaks neither key bytes nor
// tenant existence.
func (ts *tenantSet) authenticate(key string) (*tenant, bool) {
	var found *tenant
	kb := []byte(key)
	for _, t := range ts.list {
		if subtle.ConstantTimeCompare(kb, []byte(t.cfg.Key)) == 1 {
			found = t
		}
	}
	return found, found != nil
}

// tenantKey carries the resolved tenant through the request context.
const tenantCtxKey ctxKey = 1

// tenantFrom returns the request's tenant. The auth middleware guarantees
// one on every data-plane request; the anonymous tenant is the fallback so
// direct handler tests stay runnable.
func (s *Server) tenantFrom(ctx context.Context) *tenant {
	if t, ok := ctx.Value(tenantCtxKey).(*tenant); ok {
		return t
	}
	return s.tenants.anon
}

// requestKey extracts the API key from Authorization: Bearer or X-Api-Key.
func requestKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if k, ok := strings.CutPrefix(h, "Bearer "); ok {
			return k
		}
	}
	return r.Header.Get("X-Api-Key")
}

// withAuth is the data-plane tenancy middleware: it resolves every /v1 and
// /v2 request to a tenant (401 when keys are configured and the request
// carries none or a wrong one) and applies the tenant's request-rate token
// bucket (429 rate_limited). /metrics and /healthz pass through untouched.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/v1/") && !strings.HasPrefix(r.URL.Path, "/v2/") {
			next.ServeHTTP(w, r)
			return
		}
		tn := s.tenants.anon
		if s.tenants.authRequired() {
			key := requestKey(r)
			if key == "" {
				s.apiErr(w, r, http.StatusUnauthorized, errCodeUnauthorized,
					"missing API key (use Authorization: Bearer or X-Api-Key)")
				return
			}
			var ok bool
			if tn, ok = s.tenants.authenticate(key); !ok {
				s.apiErr(w, r, http.StatusUnauthorized, errCodeUnauthorized, "unknown API key")
				return
			}
		}
		if !tn.allowRequest(time.Now()) {
			s.mx.tenantRejected.With(tn.id(), "rate").Inc()
			s.apiErrRetry(w, r, http.StatusTooManyRequests, errCodeRateLimited, 1,
				"tenant %s is over its request rate (%g req/s)", tn.id(), tn.cfg.RateRPS)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey, tn)))
	})
}

// ---- ledger --------------------------------------------------------------

// workCharge is the quota price of a finished job: its ε-neighborhood
// searches plus the candidate points those searches examined — the two
// Work counters that track the actual compute a job consumed, exact and
// approximate alike.
func workCharge(searches, candidates int64) int64 { return searches + candidates }

// chargeJob settles a finished job against its tenant's ledger and the
// tenant-labeled counters. Called once per job, from the runner that
// finished it.
func (s *Server) chargeJob(j *job, searches, candidates int64) {
	tn := j.tenant
	if tn == nil {
		tn = s.tenants.anon
	}
	charge := workCharge(searches, candidates)
	tn.searches.Add(searches)
	tn.candidates.Add(candidates)
	tn.charged.Add(charge)
	tn.jobsRun.Add(1)
	id := tn.id()
	s.mx.tenantWork.With(id).Add(float64(charge))
	s.mx.tenantSearches.With(id).Add(float64(searches))
	s.mx.tenantJobs.With(id).Inc()
	s.log.Info("job charged",
		"job", j.id, "tenant", id, "searches", searches,
		"candidates", candidates, "charge", charge, "ledger", tn.charged.Load())
}

// ---- /v2/tenants/self ----------------------------------------------------

// tenantDoc is the GET /v2/tenants/self document: identity, configured
// limits (0 = unlimited), and ledger usage.
type tenantDoc struct {
	ID     string          `json:"id"`
	Limits tenantLimitsDoc `json:"limits"`
	Usage  tenantUsageDoc  `json:"usage"`
}

type tenantLimitsDoc struct {
	RateRPS           float64 `json:"rate_rps"`
	Burst             int     `json:"burst"`
	MaxConcurrentJobs int     `json:"max_concurrent_jobs"`
	WorkQuota         int64   `json:"work_quota"`
	AllowApprox       bool    `json:"allow_approx"`
}

type tenantUsageDoc struct {
	WorkCharged    int64 `json:"work_charged"`
	WorkRemaining  int64 `json:"work_remaining"` // -1 = unlimited
	EpsSearches    int64 `json:"eps_searches"`
	Candidates     int64 `json:"candidates_examined"`
	JobsCharged    int64 `json:"jobs_charged"`
	JobsShed       int64 `json:"jobs_shed"`
	JobsLive       int64 `json:"jobs_live"`
	QuotaExhausted bool  `json:"quota_exhausted"`
}

func (s *Server) handleTenantSelf(w http.ResponseWriter, r *http.Request) {
	tn := s.tenantFrom(r.Context())
	remaining := int64(-1)
	if tn.cfg.WorkQuota > 0 {
		if remaining = tn.cfg.WorkQuota - tn.charged.Load(); remaining < 0 {
			remaining = 0
		}
	}
	writeJSON(w, http.StatusOK, tenantDoc{
		ID: tn.id(),
		Limits: tenantLimitsDoc{
			RateRPS:           tn.cfg.RateRPS,
			Burst:             tn.cfg.Burst,
			MaxConcurrentJobs: tn.cfg.MaxConcurrentJobs,
			WorkQuota:         tn.cfg.WorkQuota,
			AllowApprox:       tn.cfg.AllowApprox,
		},
		Usage: tenantUsageDoc{
			WorkCharged:    tn.charged.Load(),
			WorkRemaining:  remaining,
			EpsSearches:    tn.searches.Load(),
			Candidates:     tn.candidates.Load(),
			JobsCharged:    tn.jobsRun.Load(),
			JobsShed:       tn.jobsShed.Load(),
			JobsLive:       tn.jobsLive.Load(),
			QuotaExhausted: tn.overQuota(),
		},
	})
}
