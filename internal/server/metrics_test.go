package server

import (
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"vdbscan/internal/obs/prom"
)

// TestMetricsExposition validates the full scrape with the in-tree strict
// parser and checks the tentpole requirements: at least five histogram
// families, each labeled {dataset, index, tiled}; float uptime; a start
// time gauge; and per-run observations landing in the right series.
func TestMetricsExposition(t *testing.T) {
	s, c := newTestServer(t, Config{Threads: 2, RefreezePoints: 200})
	c.doJSON("POST", "/v1/datasets?index=grid", pointsCSV(t, testPoints(t, 1500)), http.StatusCreated)
	c.submitJob("d1", `{"variants":[{"eps":2,"minpts":8},{"eps":3,"minpts":4},{"eps":4,"minpts":4}],"tiles":2}`,
		http.StatusAccepted)
	c.waitDone("j1")
	// Trip a background refreeze so the refreeze histogram has a sample.
	c.doJSON("POST", "/v1/datasets/d1/points", pointsCSV(t, testPoints(t, 250)), http.StatusAccepted)
	s.registry.flushRefreezes()

	code, hdr, body := c.do("GET", "/metrics", nil)
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q, want the 0.0.4 text format", ct)
	}
	exp, err := prom.Parse(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("exposition fails the in-tree lint: %v\n%s", err, body)
	}
	if n := exp.Histograms(); n < 5 {
		t.Errorf("histogram families = %d, want >= 5", n)
	}
	for _, fam := range exp.Families {
		if fam.Type != "histogram" || len(fam.Samples) == 0 {
			continue
		}
		for _, l := range []string{"dataset", "index", "tiled"} {
			if _, ok := fam.Samples[0].Labels[l]; !ok {
				t.Errorf("histogram %s lacks label %q", fam.Name, l)
			}
		}
	}

	labels := map[string]string{"dataset": "d1", "index": "grid", "tiled": "tiled"}
	for _, h := range []struct {
		name string
		want float64 // minimum expected _count
	}{
		{"vdbscand_job_queue_wait_seconds", 1},
		{"vdbscand_batch_coalesce_window_seconds", 1},
		{"vdbscand_batch_run_seconds", 1},
		{"vdbscand_variant_run_seconds", 3},
		// Every variant emits a Done event, but a near-total-reuse variant
		// may do arbitrarily few searches, so only require one observation.
		{"vdbscand_variant_eps_searches", 1},
	} {
		lb := map[string]string{}
		for k, v := range labels {
			lb[k] = v
		}
		got, ok := exp.Value(h.name+"_count", lb)
		if !ok {
			t.Errorf("no %s_count sample for %v", h.name, labels)
			continue
		}
		if got < h.want {
			t.Errorf("%s_count = %g, want >= %g", h.name, got, h.want)
		}
	}
	if got, ok := exp.Value("vdbscand_dataset_refreeze_seconds_count",
		map[string]string{"dataset": "d1", "index": "grid", "tiled": labelNA}); !ok || got < 1 {
		t.Errorf("refreeze histogram count = %g (found=%v), want >= 1", got, ok)
	}

	// The uptime truncation fix: float seconds, nonzero well under 1s of
	// runtime, plus an absolute start-time gauge for counter-reset math.
	up, ok := exp.Value("vdbscand_uptime_seconds", nil)
	if !ok || up <= 0 {
		t.Errorf("uptime = %g (found=%v), want > 0", up, ok)
	}
	if up != math.Trunc(up) {
		// Sub-second resolution observed directly; if the scrape landed on
		// an exact second boundary the > 0 check above already covers the
		// old always-0-at-startup failure.
		t.Log("uptime has sub-second resolution:", up)
	}
	startTS, ok := exp.Value("vdbscand_start_time_seconds", nil)
	if !ok {
		t.Fatal("no vdbscand_start_time_seconds gauge")
	}
	now := float64(time.Now().UnixNano()) / 1e9
	if d := now - startTS; d < 0 || d > 300 {
		t.Errorf("start_time_seconds is %.1fs from now", d)
	}

	// SSE counters join the exposition once a stream has been served.
	if v, ok := exp.Value("vdbscand_sse_frames_total", map[string]string{"event": "queued"}); !ok || v < 1 {
		t.Errorf("sse queued frames = %g (found=%v), want >= 1", v, ok)
	}
}
