package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vdbscan"
	"vdbscan/internal/obs"
)

// Admission errors surfaced by Server.admit. handlers.go maps them to 503
// (draining) and 429 + Retry-After (queue full).
var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("job queue is full")
)

// batch is one ClusterVariants run: every job coalesced into it targets the
// same dataset, and the run executes the union of their variant lists. The
// batch context is canceled only when every member job has gone away
// (canceled or deadline-expired), so one client's cancel never aborts
// another client's work.
type batch struct {
	id        string
	datasetID string
	created   time.Time // when the batch opened; run start minus created is the coalescing window

	ctx    context.Context
	cancel context.CancelFunc

	timer  *time.Timer // coalescing-window seal; nil when batching is off
	sealed bool        // guarded by Server.mu, like membership below
	approx bool        // load-shed batch: runs the ρ-approximate path (see shed.go)

	mu    sync.Mutex
	jobs  []*job
	union []vdbscan.Params // deduplicated union of member variant lists
	keys  map[string]int   // param key -> union index
	live  int              // member jobs not yet terminal
	tiles int              // max tiles requested across members (0 = server default)

	// Set once by runBatch after the run; read by the trace/labels handlers.
	points      int // dataset size the run saw
	version     int // dataset install version the run saw
	traceChrome []byte
	traceText   []byte
	ranAt       time.Time
}

func newBatch(id, datasetID string) *batch {
	ctx, cancel := context.WithCancel(context.Background())
	return &batch{
		id:        id,
		datasetID: datasetID,
		created:   time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		keys:      map[string]int{},
	}
}

func paramKey(p vdbscan.Params) string {
	return fmt.Sprintf("%g/%d", p.Eps, p.MinPts)
}

// add joins j to the batch: its params are folded into the deduplicated
// union and j.slots records where each lands. Returns the member and union
// variant counts after joining. Caller holds Server.mu, which orders add
// against seal.
func (b *batch) add(j *job) (members, union int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j.batch = b
	j.slots = make([]int, len(j.params))
	for i, p := range j.params {
		k := paramKey(p)
		slot, ok := b.keys[k]
		if !ok {
			slot = len(b.union)
			b.union = append(b.union, p)
			b.keys[k] = slot
		}
		j.slots[i] = slot
	}
	if j.tiles > b.tiles {
		b.tiles = j.tiles
	}
	b.jobs = append(b.jobs, j)
	b.live++
	return len(b.jobs), len(b.union)
}

// leave records that a member job turned terminal before the batch
// delivered results. When the last one leaves, the run (pending or in
// flight) is canceled: nobody is waiting for it anymore.
func (b *batch) leave(j *job) {
	b.mu.Lock()
	b.live--
	last := b.live == 0
	b.mu.Unlock()
	if last {
		b.cancel()
	}
}

// members returns a snapshot of the batch's jobs and its union variants.
func (b *batch) members() ([]*job, []vdbscan.Params) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*job(nil), b.jobs...), b.union
}

func (b *batch) setRun(points, version int, chrome, text []byte) {
	b.mu.Lock()
	b.points = points
	b.version = version
	b.traceChrome = chrome
	b.traceText = text
	b.ranAt = time.Now()
	b.mu.Unlock()
}

// trace returns the rendered exports of the batch's run, or ok=false if the
// batch has not run yet.
func (b *batch) trace() (chrome, text []byte, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.traceChrome, b.traceText, b.traceChrome != nil
}

// runBatch executes one sealed batch on a runner goroutine: snapshot the
// dataset's frozen index, run the union variant list once, and distribute
// per-slot results to every member job still alive.
func (s *Server) runBatch(b *batch) {
	if b.approx {
		s.runApproxBatch(b)
		return
	}
	defer b.cancel()
	jobs, union := b.members()

	// Every member leaves the admission queue now; jobs abandoned while
	// queued already released their slot.
	released := 0
	for _, j := range jobs {
		if j.leftQueue.CompareAndSwap(false, true) {
			released++
		}
	}
	if released > 0 {
		s.jobLeftQueue(released)
	}

	var live []*job
	for _, j := range jobs {
		if j.setRunning() {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return // all members canceled or timed out while queued
	}

	d, ok := s.registry.get(b.datasetID)
	if !ok {
		s.failBatch(live, "dataset deleted before the job ran")
		return
	}
	idx, points, version := d.snapshot()

	var work vdbscan.Work
	b.mu.Lock()
	tiles := b.tiles
	b.mu.Unlock()
	if tiles == 0 {
		tiles = s.cfg.Tiles
	}

	// One label resolution per run; every observation below is lock-free.
	ob := s.mx.batchObserver(b.datasetID, d.kind.String(), tilesLabel(tiles))
	runStart := time.Now()
	for _, j := range live {
		ob.queueWait.Observe(runStart.Sub(j.created).Seconds())
		j.events.publish(evRunning, runningFrame{
			Job: j.id, Batch: b.id, Points: points, Version: version,
			Variants: len(union),
		}, true, false)
	}
	ob.coalesceWin.Observe(runStart.Sub(b.created).Seconds())

	// Live per-variant progress: the WithProgress callback runs serially on
	// worker goroutines, so it must stay cheap — one histogram observation
	// and a non-blocking fan-out per completed variant.
	progress := func(e vdbscan.ProgressEvent) {
		ob.variantRun.Observe(e.Duration.Seconds())
		pf := progressFrame{
			Batch: b.id, Done: e.Done, Total: e.Total,
			Variant: e.Variant, Source: e.Source, FromScratch: e.FromScratch,
			FractionReused: e.FractionReused, MeanReused: e.MeanFractionReused,
			DurationMS: float64(e.Duration) / float64(time.Millisecond),
			ElapsedMS:  float64(e.Elapsed) / float64(time.Millisecond),
		}
		for _, j := range live {
			pf.Job = j.id
			j.events.publish(evProgress, pf, false, false)
		}
	}
	// The tracer sink sees every span event at record time (concurrently,
	// from worker goroutines). Variant completions feed the ε-search work
	// histograms and the per-slot work table that quota charging reads —
	// e.Work on KindDone is that variant's own delta, so summing a job's
	// slots prices exactly the work its variants consumed. Tile-phase spans
	// become SSE phase frames. Everything else is ignored in one switch.
	var slotMu sync.Mutex
	slotWork := make([]vdbscan.Work, len(union))
	sink := func(e obs.Event) {
		switch e.Kind {
		case obs.KindDone:
			if e.Variant >= 0 && int(e.Variant) < len(union) {
				slotMu.Lock()
				slotWork[e.Variant] = slotWork[e.Variant].Add(e.Work)
				slotMu.Unlock()
			}
			if e.Variant >= 0 && e.Work.NeighborSearches > 0 {
				ob.epsSearches.Observe(float64(e.Work.NeighborSearches))
				ob.candPerSearch.Observe(
					float64(e.Work.CandidatesExamined) / float64(e.Work.NeighborSearches))
			}
		case obs.KindPhaseBegin, obs.KindPhaseEnd:
			ph := phaseName(obs.Phase(e.Arg))
			if ph == "" {
				return // only tile phases stream; intra-variant phases stay in the trace
			}
			state := "begin"
			if e.Kind == obs.KindPhaseEnd {
				state = "end"
			}
			hf := phaseFrame{
				Batch: b.id, Variant: int(e.Variant), Phase: ph, State: state,
				AtMS: float64(e.At) / float64(time.Millisecond),
			}
			for _, j := range live {
				hf.Job = j.id
				j.events.publish(evPhase, hf, false, false)
			}
		}
	}
	tr := obs.NewTracer(obs.WithSink(sink))

	s.log.Info("batch run starting",
		"batch", b.id, "dataset", b.datasetID, "jobs", len(live),
		"variants", len(union), "points", points, "tiles", tiles,
		"index", d.kind.String())
	run, err := idx.ClusterVariants(union,
		vdbscan.WithThreads(s.cfg.Threads),
		vdbscan.WithTiles(tiles),
		vdbscan.WithContext(b.ctx),
		vdbscan.WithTracer(tr),
		vdbscan.WithWork(&work),
		vdbscan.WithProgress(progress),
	)
	runDur := time.Since(runStart)
	ob.batchRun.Observe(runDur.Seconds())
	s.ctrs.batchesRun.Add(1)
	s.addWork(work)
	if err != nil {
		s.log.Warn("batch run failed",
			"batch", b.id, "dataset", b.datasetID, "duration", runDur, "err", err)
	} else {
		s.log.Info("batch run done",
			"batch", b.id, "dataset", b.datasetID, "duration", runDur,
			"variants", len(union), "searches", work.NeighborSearches)
	}

	var chrome, text bytes.Buffer
	if terr := tr.WriteChromeTrace(&chrome); terr != nil {
		chrome.Reset()
		fmt.Fprintf(&chrome, `{"error":%q}`, terr.Error())
	}
	if terr := tr.WriteTimeline(&text); terr != nil {
		text.Reset()
		fmt.Fprintf(&text, "trace unavailable: %v\n", terr)
	}
	b.setRun(points, version, chrome.Bytes(), text.Bytes())

	if err != nil {
		s.failBatch(live, err.Error())
		return
	}
	s.ctrs.variantsRun.Add(int64(len(union)))

	for _, j := range live {
		var jw vdbscan.Work
		outcomes := make([]variantOutcome, len(j.params))
		for i, slot := range j.slots {
			vr := run.Results[slot]
			outcomes[i] = variantOutcome{
				Params:         vr.Params,
				Clusters:       vr.Clustering.NumClusters,
				Noise:          vr.Clustering.NumNoise(),
				FractionReused: vr.FractionReused,
				FromScratch:    vr.FromScratch,
				Duration:       vr.Duration(),
				clustering:     vr.Clustering,
			}
			jw = jw.Add(slotWork[slot])
		}
		j.setOutcomeMeta("", jw)
		if j.finish(stateDone, "", outcomes) {
			s.ctrs.jobsCompleted.Add(1)
			s.chargeJob(j, jw.NeighborSearches, jw.CandidatesExamined)
			b.leave(j)
		}
	}
}

// failBatch finishes every still-live member as failed. Jobs that turned
// terminal concurrently (e.g. the cancel that aborted the run) are skipped.
func (s *Server) failBatch(live []*job, msg string) {
	for _, j := range live {
		if j.finish(stateFailed, msg, nil) {
			s.ctrs.jobsFailed.Add(1)
			j.batch.leave(j)
		}
	}
}
