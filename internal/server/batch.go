package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"vdbscan"
)

// Admission errors surfaced by Server.admit. handlers.go maps them to 503
// (draining) and 429 + Retry-After (queue full).
var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("job queue is full")
)

// batch is one ClusterVariants run: every job coalesced into it targets the
// same dataset, and the run executes the union of their variant lists. The
// batch context is canceled only when every member job has gone away
// (canceled or deadline-expired), so one client's cancel never aborts
// another client's work.
type batch struct {
	id        string
	datasetID string

	ctx    context.Context
	cancel context.CancelFunc

	timer  *time.Timer // coalescing-window seal; nil when batching is off
	sealed bool        // guarded by Server.mu, like membership below

	mu    sync.Mutex
	jobs  []*job
	union []vdbscan.Params // deduplicated union of member variant lists
	keys  map[string]int   // param key -> union index
	live  int              // member jobs not yet terminal
	tiles int              // max tiles requested across members (0 = server default)

	// Set once by runBatch after the run; read by the trace/labels handlers.
	points      int // dataset size the run saw
	version     int // dataset install version the run saw
	traceChrome []byte
	traceText   []byte
	ranAt       time.Time
}

func newBatch(id, datasetID string) *batch {
	ctx, cancel := context.WithCancel(context.Background())
	return &batch{
		id:        id,
		datasetID: datasetID,
		ctx:       ctx,
		cancel:    cancel,
		keys:      map[string]int{},
	}
}

func paramKey(p vdbscan.Params) string {
	return fmt.Sprintf("%g/%d", p.Eps, p.MinPts)
}

// add joins j to the batch: its params are folded into the deduplicated
// union and j.slots records where each lands. Returns the member count
// after joining. Caller holds Server.mu, which orders add against seal.
func (b *batch) add(j *job) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	j.batch = b
	j.slots = make([]int, len(j.params))
	for i, p := range j.params {
		k := paramKey(p)
		slot, ok := b.keys[k]
		if !ok {
			slot = len(b.union)
			b.union = append(b.union, p)
			b.keys[k] = slot
		}
		j.slots[i] = slot
	}
	if j.tiles > b.tiles {
		b.tiles = j.tiles
	}
	b.jobs = append(b.jobs, j)
	b.live++
	return len(b.jobs)
}

// leave records that a member job turned terminal before the batch
// delivered results. When the last one leaves, the run (pending or in
// flight) is canceled: nobody is waiting for it anymore.
func (b *batch) leave(j *job) {
	b.mu.Lock()
	b.live--
	last := b.live == 0
	b.mu.Unlock()
	if last {
		b.cancel()
	}
}

// members returns a snapshot of the batch's jobs and its union variants.
func (b *batch) members() ([]*job, []vdbscan.Params) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]*job(nil), b.jobs...), b.union
}

func (b *batch) setRun(points, version int, chrome, text []byte) {
	b.mu.Lock()
	b.points = points
	b.version = version
	b.traceChrome = chrome
	b.traceText = text
	b.ranAt = time.Now()
	b.mu.Unlock()
}

// trace returns the rendered exports of the batch's run, or ok=false if the
// batch has not run yet.
func (b *batch) trace() (chrome, text []byte, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.traceChrome, b.traceText, b.traceChrome != nil
}

// runBatch executes one sealed batch on a runner goroutine: snapshot the
// dataset's frozen index, run the union variant list once, and distribute
// per-slot results to every member job still alive.
func (s *Server) runBatch(b *batch) {
	defer b.cancel()
	jobs, union := b.members()

	// Every member leaves the admission queue now; jobs abandoned while
	// queued already released their slot.
	released := 0
	for _, j := range jobs {
		if j.leftQueue.CompareAndSwap(false, true) {
			released++
		}
	}
	if released > 0 {
		s.jobLeftQueue(released)
	}

	var live []*job
	for _, j := range jobs {
		if j.setRunning() {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return // all members canceled or timed out while queued
	}

	d, ok := s.registry.get(b.datasetID)
	if !ok {
		s.failBatch(live, "dataset deleted before the job ran")
		return
	}
	idx, points, version := d.snapshot()

	tr := vdbscan.NewTracer()
	var work vdbscan.Work
	b.mu.Lock()
	tiles := b.tiles
	b.mu.Unlock()
	if tiles == 0 {
		tiles = s.cfg.Tiles
	}
	run, err := idx.ClusterVariants(union,
		vdbscan.WithThreads(s.cfg.Threads),
		vdbscan.WithTiles(tiles),
		vdbscan.WithContext(b.ctx),
		vdbscan.WithTracer(tr),
		vdbscan.WithWork(&work),
	)
	s.ctrs.batchesRun.Add(1)
	s.addWork(work)

	var chrome, text bytes.Buffer
	if terr := tr.WriteChromeTrace(&chrome); terr != nil {
		chrome.Reset()
		fmt.Fprintf(&chrome, `{"error":%q}`, terr.Error())
	}
	if terr := tr.WriteTimeline(&text); terr != nil {
		text.Reset()
		fmt.Fprintf(&text, "trace unavailable: %v\n", terr)
	}
	b.setRun(points, version, chrome.Bytes(), text.Bytes())

	if err != nil {
		s.failBatch(live, err.Error())
		return
	}
	s.ctrs.variantsRun.Add(int64(len(union)))

	for _, j := range live {
		outcomes := make([]variantOutcome, len(j.params))
		for i, slot := range j.slots {
			vr := run.Results[slot]
			outcomes[i] = variantOutcome{
				Params:         vr.Params,
				Clusters:       vr.Clustering.NumClusters,
				Noise:          vr.Clustering.NumNoise(),
				FractionReused: vr.FractionReused,
				FromScratch:    vr.FromScratch,
				Duration:       vr.Duration(),
				clustering:     vr.Clustering,
			}
		}
		if j.finish(stateDone, "", outcomes) {
			s.ctrs.jobsCompleted.Add(1)
			b.leave(j)
		}
	}
}

// failBatch finishes every still-live member as failed. Jobs that turned
// terminal concurrently (e.g. the cancel that aborted the run) are skipped.
func (s *Server) failBatch(live []*job, msg string) {
	for _, j := range live {
		if j.finish(stateFailed, msg, nil) {
			s.ctrs.jobsFailed.Add(1)
			j.batch.leave(j)
		}
	}
}
