package server

import (
	"time"
)

// TTL eviction: finished job results (labels, trace, document) used to live
// in memory forever, which caps a long-running daemon's uptime by its job
// history. A background sweeper now moves jobs that have been terminal for
// Config.JobTTL out of the store, leaving a tenant-scoped tombstone so a
// late GET distinguishes "never existed" (404) from "expired" (410 Gone,
// code "gone"). Live jobs — queued or running — are never touched: the TTL
// clock starts at the terminal transition.

// evictSweepEvery bounds how often the sweeper wakes: TTL/4 keeps eviction
// latency under 25% of the TTL without busy-waking on long TTLs.
func sweepInterval(ttl time.Duration) time.Duration {
	iv := ttl / 4
	if iv < 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	if iv > time.Minute {
		iv = time.Minute
	}
	return iv
}

// terminalSince returns when the job turned terminal, or ok=false while it
// is still live.
func (j *job) terminalSince() (time.Time, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished, j.terminalLocked()
}

// evictedOwner returns the tenant whose evicted job tombstone matches id.
func (st *jobStore) evictedOwner(id string) (*tenant, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tn, ok := st.evicted[id]
	return tn, ok
}

// evictExpired removes every job that has been terminal for at least ttl,
// tombstoning each under its tenant. Returns the evicted jobs.
func (st *jobStore) evictExpired(now time.Time, ttl time.Duration) []*job {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []*job
	for id, j := range st.m {
		fin, terminal := j.terminalSince()
		if !terminal || now.Sub(fin) < ttl {
			continue
		}
		delete(st.m, id)
		st.evicted[id] = j.tenant
		out = append(out, j)
	}
	return out
}

// sweepEvictions is the background eviction loop; it runs for the server's
// lifetime (Close stops it) when JobTTL is enabled.
func (s *Server) sweepEvictions(ttl time.Duration) {
	tick := time.NewTicker(sweepInterval(ttl))
	defer tick.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case now := <-tick.C:
			evicted := s.jobs.evictExpired(now, ttl)
			for _, j := range evicted {
				tid := anonymousTenant
				if j.tenant != nil {
					tid = j.tenant.id()
				}
				s.mx.jobsEvicted.With(tid).Inc()
				s.log.Info("job evicted",
					"job", j.id, "tenant", tid, "dataset", j.datasetID, "ttl", ttl)
			}
		}
	}
}
