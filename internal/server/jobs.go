package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vdbscan"
)

// Job states. A job is terminal in done, failed, or canceled; the done
// channel closes exactly when the job turns terminal, which is what
// long-polls and waiting clients block on.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateFailed   = "failed"
	stateCanceled = "canceled"
)

// variantOutcome is the per-variant result a job exposes: the summary the
// job document embeds plus the full clustering behind the labels endpoint.
type variantOutcome struct {
	Params         vdbscan.Params
	Clusters       int
	Noise          int
	FractionReused float64
	FromScratch    bool
	Duration       time.Duration
	clustering     *vdbscan.Clustering
}

// job is one submitted clustering request. Mutable state is guarded by mu;
// transitions to a terminal state happen exactly once and close done.
type job struct {
	id        string
	datasetID string
	params    []vdbscan.Params
	created   time.Time
	deadline  time.Time

	tenant *tenant // owner; set before admission, never changes
	approx bool    // load-shed: served by the ρ-approximate path

	batch *batch // assigned at admission, never changes
	slots []int  // params[i] -> index into the batch's union variant list
	tiles int    // requested tile-level parallelism (0 = server default)

	// events is the job's SSE broker (see events.go). Created with the job;
	// the server wires its metrics handle before admission.
	events *stream

	mu       sync.Mutex
	state    string
	err      string
	started  time.Time
	finished time.Time
	results  []variantOutcome
	quality  string       // "" = exact, qualityApprox = load-shed answer
	work     vdbscan.Work // this job's metered work (its quota charge basis)
	watchdog *time.Timer

	done chan struct{}

	// leftQueue ensures the job releases its admission slot exactly once
	// (either when its batch starts running or when it is canceled first).
	leftQueue atomic.Bool
}

// terminalLocked reports whether the job has already finished.
func (j *job) terminalLocked() bool {
	return j.state == stateDone || j.state == stateFailed || j.state == stateCanceled
}

// setRunning moves queued -> running; a no-op if the job finished first
// (canceled or deadline-expired while queued). Reports whether the job is
// still live.
func (j *job) setRunning() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminalLocked() {
		return false
	}
	j.state = stateRunning
	j.started = time.Now()
	return true
}

// finish moves the job to a terminal state exactly once. It returns false
// if the job was already terminal. The caller handles batch membership and
// queue accounting.
func (j *job) finish(state, errMsg string, results []variantOutcome) bool {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.results = results
	j.finished = time.Now()
	if j.watchdog != nil {
		j.watchdog.Stop()
		j.watchdog = nil
	}
	lifetime := j.finished.Sub(j.created)
	j.mu.Unlock()
	if j.tenant != nil {
		j.tenant.jobsLive.Add(-1)
	}
	close(j.done)
	// The terminal SSE frame closes the job's event stream; finish is the
	// single choke point every terminal transition (done, failed, canceled,
	// deadline) goes through, so no path can strand a subscriber.
	j.events.publish(state, terminalFrame{
		Job: j.id, State: state, Error: errMsg,
		DurationMS: float64(lifetime) / float64(time.Millisecond),
	}, true, true)
	return true
}

// view returns a consistent copy of the job's mutable state.
func (j *job) view() (state, errMsg string, started, finished time.Time, results []variantOutcome) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.started, j.finished, j.results
}

// setOutcomeMeta records the run's quality tag and the job's metered work.
// Called by the runner just before finish, so every reader that observes
// the terminal state also observes the metadata.
func (j *job) setOutcomeMeta(quality string, work vdbscan.Work) {
	j.mu.Lock()
	j.quality = quality
	j.work = work
	j.mu.Unlock()
}

// outcomeMeta returns the quality tag and metered work.
func (j *job) outcomeMeta() (string, vdbscan.Work) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.quality, j.work
}

// outcome returns the i-th variant outcome once the job is done.
func (j *job) outcome(i int) (variantOutcome, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != stateDone || i < 0 || i >= len(j.results) {
		return variantOutcome{}, false
	}
	return j.results[i], true
}

// jobStore indexes jobs by ID. evicted holds tombstones of TTL-reclaimed
// jobs — id -> owning tenant — so a late GET can answer 410 Gone to the
// owner and 404 to everyone else (eviction must not leak job IDs across
// tenants).
type jobStore struct {
	mu      sync.Mutex
	m       map[string]*job
	evicted map[string]*tenant
	seq     atomic.Int64
}

func newJobStore() *jobStore {
	return &jobStore{m: map[string]*job{}, evicted: map[string]*tenant{}}
}

// new creates a queued job with its deadline counted from now. The job is
// NOT in the store yet: callers publish it with put only after admission
// succeeds, so clients can never observe a job without a batch.
func (st *jobStore) new(tn *tenant, datasetID string, params []vdbscan.Params, timeout time.Duration) *job {
	now := time.Now()
	return &job{
		id:        fmt.Sprintf("j%d", st.seq.Add(1)),
		datasetID: datasetID,
		params:    params,
		created:   now,
		deadline:  now.Add(timeout),
		tenant:    tn,
		state:     stateQueued,
		done:      make(chan struct{}),
		events:    newStream(),
	}
}

// put publishes an admitted job.
func (st *jobStore) put(j *job) {
	st.mu.Lock()
	st.m[j.id] = j
	st.mu.Unlock()
}

func (st *jobStore) get(id string) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.m[id]
	return j, ok
}

func (st *jobStore) list() []*job {
	st.mu.Lock()
	out := make([]*job, 0, len(st.m))
	for _, j := range st.m {
		out = append(out, j)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		// Numeric ID order == submission order.
		return len(out[i].id) < len(out[j].id) ||
			(len(out[i].id) == len(out[j].id) && out[i].id < out[j].id)
	})
	return out
}

// abandon finishes a job early (cancel or deadline) and detaches it from
// its batch: the admission slot is released if the job was still queued,
// and the batch run is canceled once no live jobs remain. Reports whether
// the job was still live.
func (s *Server) abandon(j *job, state, errMsg string) bool {
	if !j.finish(state, errMsg, nil) {
		return false
	}
	switch state {
	case stateCanceled:
		s.ctrs.jobsCanceled.Add(1)
	case stateFailed:
		s.ctrs.jobsFailed.Add(1)
	}
	if j.leftQueue.CompareAndSwap(false, true) {
		s.jobLeftQueue(1)
	}
	j.batch.leave(j)
	s.log.Info("job abandoned",
		"job", j.id, "dataset", j.datasetID, "batch", j.batch.id,
		"state", state, "err", errMsg)
	return true
}

// armWatchdog starts the job's deadline timer. Expiry is a per-job failure:
// the batch keeps running for its other members unless this was the last
// live one.
func (s *Server) armWatchdog(j *job) {
	d := time.Until(j.deadline)
	j.mu.Lock()
	j.watchdog = time.AfterFunc(d, func() {
		s.abandon(j, stateFailed, "deadline exceeded: "+fmt.Sprint(j.deadline.Sub(j.created)))
	})
	j.mu.Unlock()
}
