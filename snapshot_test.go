package vdbscan

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestSnapshotLabelIdentity is the exactness property of the durable
// store: an index loaded back from a snapshot must produce byte-identical
// labels to the index it was saved from, across every execution shape —
// both index kinds, untiled and tiled, sequential and parallel, with and
// without cluster reuse.
func TestSnapshotLabelIdentity(t *testing.T) {
	pts := testPoints(t, 6000)
	params := []Params{
		{Eps: 2, MinPts: 4},
		{Eps: 3, MinPts: 4},
		{Eps: 4, MinPts: 8},
	}
	for _, kind := range []IndexKind{IndexRTree, IndexGrid} {
		fresh := NewIndex(pts, WithIndexKind(kind))
		// Cluster once first so the grid kind builds its cell grid and the
		// snapshot carries it — the loaded index then serves tiled runs
		// straight from the mapping.
		if _, err := fresh.ClusterVariants(params); err != nil {
			t.Fatalf("kind=%v: warmup: %v", kind, err)
		}
		path := filepath.Join(t.TempDir(), "snapshot")
		if err := fresh.SaveSnapshot(path, 7); err != nil {
			t.Fatalf("kind=%v: SaveSnapshot: %v", kind, err)
		}
		loaded, info, err := LoadSnapshot(path)
		if err != nil {
			t.Fatalf("kind=%v: LoadSnapshot: %v", kind, err)
		}
		if info.Points != len(pts) || info.Kind != kind || info.Sequence != 7 {
			t.Fatalf("kind=%v: info %+v", kind, info)
		}
		if got := loaded.Points(); len(got) != len(pts) {
			t.Fatalf("kind=%v: loaded %d points, want %d", kind, len(got), len(pts))
		} else {
			for i := range pts {
				if got[i] != pts[i] {
					t.Fatalf("kind=%v: point %d diverged after reload", kind, i)
				}
			}
		}

		for _, tiles := range []int{1, 4, 9} {
			for _, workers := range []int{1, 8} {
				for _, noReuse := range []bool{false, true} {
					opts := []RunOption{WithTiles(tiles), WithThreads(workers)}
					if noReuse {
						opts = append(opts, WithoutReuse())
					}
					name := fmt.Sprintf("kind=%v/tiles=%d/workers=%d/noreuse=%v", kind, tiles, workers, noReuse)
					want, err := fresh.ClusterVariants(params, opts...)
					if err != nil {
						t.Fatalf("%s: fresh: %v", name, err)
					}
					got, err := loaded.ClusterVariants(params, opts...)
					if err != nil {
						t.Fatalf("%s: loaded: %v", name, err)
					}
					for v := range params {
						w, g := want.Results[v].Clustering, got.Results[v].Clustering
						if w.NumClusters != g.NumClusters {
							t.Fatalf("%s: variant %d: %d vs %d clusters", name, v, w.NumClusters, g.NumClusters)
						}
						for i := range w.Labels {
							if w.Labels[i] != g.Labels[i] {
								t.Fatalf("%s: variant %d: label %d: %d vs %d", name, v, i, w.Labels[i], g.Labels[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestSaveSnapshotRefusals pins the two refusal modes: an index without
// the flat layout has nothing to snapshot, and a file that is not a
// snapshot must fail typed.
func TestSaveSnapshotRefusals(t *testing.T) {
	pts := testPoints(t, 1000)
	noFlat := NewIndex(pts, WithFlatIndex(false))
	if err := noFlat.SaveSnapshot(filepath.Join(t.TempDir(), "s"), 1); err == nil {
		t.Fatalf("SaveSnapshot accepted a pointer-tree index")
	}

	bogus := filepath.Join(t.TempDir(), "bogus")
	if err := os.WriteFile(bogus, []byte("definitely not a snapshot, but long enough to decode"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshot(bogus); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("LoadSnapshot(bogus) = %v, want ErrSnapshotCorrupt", err)
	}
	if _, _, err := LoadSnapshot(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatalf("LoadSnapshot of a missing file succeeded")
	}
}

// TestLoadedSnapshotAcceptsInserts verifies a loaded index is not a dead
// end: Insert works (materializing mutable trees lazily) and a re-frozen
// loaded index can be snapshotted again.
func TestLoadedSnapshotRoundTripsTwice(t *testing.T) {
	pts := testPoints(t, 2000)
	fresh := NewIndex(pts)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "s1")
	if err := fresh.SaveSnapshot(p1, 1); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := LoadSnapshot(p1)
	if err != nil {
		t.Fatal(err)
	}
	// A loaded snapshot is frozen; saving it again must work and the
	// second generation must load clean.
	p2 := filepath.Join(dir, "s2")
	if err := loaded.SaveSnapshot(p2, 2); err != nil {
		t.Fatalf("re-snapshot of a loaded index: %v", err)
	}
	again, info, err := LoadSnapshot(p2)
	if err != nil {
		t.Fatalf("second-generation load: %v", err)
	}
	if info.Sequence != 2 || again.Len() != len(pts) {
		t.Fatalf("second generation: %+v len=%d", info, again.Len())
	}
	res1, err := loaded.Cluster(Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := again.Cluster(Params{Eps: 3, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res1.Labels {
		if res1.Labels[i] != res2.Labels[i] {
			t.Fatalf("label %d diverged across generations", i)
		}
	}
}
