package vdbscan

import (
	"vdbscan/internal/incremental"
	"vdbscan/internal/metrics"
)

// Incremental maintains a DBSCAN clustering under a stream of point
// insertions and deletions (IncrementalDBSCAN, Ester et al. 1998) — the
// companion to ClusterVariants for monitoring workloads where observations
// arrive continuously and re-clustering every frame is wasteful.
//
// Labels are indexed by insertion order; deleted points report Noise.
// Incremental is not safe for concurrent use.
type Incremental struct {
	c *incremental.Clusterer
	w *Work
	m *metrics.Counters
}

// RefreezeStats reports the state of the incremental clusterer's
// epoch-based index maintenance: how many flat snapshots have been
// installed, how many points the current snapshot covers, the staged
// overlay deltas not yet folded in, and whether a background re-freeze
// is in flight. StaleFallbacks stays 0 in correct operation — a nonzero
// value means an ε-search found the snapshot's generation unaccounted
// for and fell back to the (slower, always-correct) pointer tree.
type RefreezeStats = incremental.RefreezeStats

// NewIncremental returns an empty incremental clusterer for the given
// parameters. Applicable options: WithWork, WithFlatIndex,
// WithRefreezeThreshold, WithTracer (a streaming clusterer is an index and
// a run in one, so it accepts the full Option set).
func NewIncremental(p Params, opts ...Option) (*Incremental, error) {
	cfg := buildConfig(opts)
	var m *metrics.Counters
	if cfg.work != nil {
		m = &metrics.Counters{}
	}
	c, err := incremental.NewWithOptions(p, m, incremental.Options{
		RefreezeThreshold: cfg.refreezeN,
		DisableFlat:       cfg.noFlat,
		Rec:               cfg.tracer.Worker(0),
	})
	if err != nil {
		return nil, wrapErr(err)
	}
	inc := &Incremental{c: c, w: cfg.work}
	if cfg.work != nil {
		// Keep a live view: snapshot on demand in Labels/Len callers is
		// overkill; update on each mutate instead (see methods).
		inc.m = m
	}
	return inc, nil
}

// m holds the counters when work tracking was requested.
func (x *Incremental) syncWork() {
	if x.w != nil && x.m != nil {
		*x.w = x.m.Snapshot()
	}
}

// Insert adds a point and updates the clustering.
func (x *Incremental) Insert(p Point) {
	x.c.Insert(p)
	x.syncWork()
}

// InsertBatch adds points in order.
func (x *Incremental) InsertBatch(pts []Point) {
	x.c.InsertBatch(pts)
	x.syncWork()
}

// Delete removes the i-th inserted point (0-based insertion order),
// demoting cores and splitting clusters as needed.
func (x *Incremental) Delete(i int) error {
	err := x.c.Delete(i)
	x.syncWork()
	return wrapErr(err)
}

// Len returns the number of insertions, including deleted points.
func (x *Incremental) Len() int { return x.c.Len() }

// LiveLen returns the number of points currently clustered.
func (x *Incremental) LiveLen() int { return x.c.LiveLen() }

// Labels materializes the current clustering in insertion order.
func (x *Incremental) Labels() *Clustering { return x.c.Labels() }

// RefreezeStats snapshots the epoch-maintenance counters of the
// streaming flat index.
func (x *Incremental) RefreezeStats() RefreezeStats { return x.c.RefreezeStats() }

// FlushRefreeze blocks until any in-flight background re-freeze has been
// installed. Benchmarks use it to pin the epoch state before measuring;
// normal callers never need it.
func (x *Incremental) FlushRefreeze() { x.c.FlushRefreeze() }
