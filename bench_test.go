// Benchmarks regenerating each table and figure of the paper's evaluation
// (§V), plus ablations of the design choices called out in DESIGN.md.
//
// Dataset sizes are scaled down so `go test -bench=.` completes in minutes
// on a laptop; the harness binary (cmd/experiments) runs the same
// experiments at configurable scale with full reporting. The benches
// report, beyond ns/op, the work metrics that carry each figure's shape:
// ε-searches, candidates filtered, and points reused per operation.
package vdbscan

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"vdbscan/internal/approx"
	"vdbscan/internal/data"
	"vdbscan/internal/dbscan"
	"vdbscan/internal/gridindex"
	"vdbscan/internal/incremental"
	"vdbscan/internal/kdist"
	"vdbscan/internal/metrics"
	"vdbscan/internal/optics"
	"vdbscan/internal/reuse"
	"vdbscan/internal/rtree"
	"vdbscan/internal/sched"
	"vdbscan/internal/stdbscan"
	"vdbscan/internal/tec"
	"vdbscan/internal/tidbscan"
	"vdbscan/internal/track"
	"vdbscan/internal/variant"
)

// fixtures are shared across benchmarks and built once.
var (
	fixOnce  sync.Once
	fixSynth *data.Dataset // cF-style, 20k points, 15% noise
	fixTEC   *data.Dataset // SW1-style thresholded TEC, 20k points
	fixIdx   map[int]*dbscan.Index
	fixTECIx *dbscan.Index
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		var err error
		fixSynth, err = data.Generate(data.SynthConfig{
			Class: data.ClassCF, N: 20_000, NoiseFrac: 0.15, Seed: 0xBE7C4,
		})
		if err != nil {
			panic(err)
		}
		fixTEC, err = tec.Simulate(tec.Config{N: 20_000, Seed: 0x51, Name: "SW1-bench"})
		if err != nil {
			panic(err)
		}
		fixIdx = map[int]*dbscan.Index{}
		for _, r := range []int{1, 16, 70, 100, 256} {
			fixIdx[r] = dbscan.BuildIndex(fixSynth.Points, dbscan.IndexOptions{R: r})
		}
		fixTECIx = dbscan.BuildIndex(fixTEC.Points, dbscan.IndexOptions{R: 70})
	})
}

// synthParams are meaningful on the 20k cF fixture (2 dense blobs + noise
// over the 360x180 region).
var synthParams = dbscan.Params{Eps: 3, MinPts: 4}

// tecParams are meaningful on the 20k TEC fixture.
var tecParams = dbscan.Params{Eps: 2, MinPts: 4}

func reportWork(b *testing.B, s metrics.Snapshot, n int) {
	b.ReportMetric(float64(s.NeighborSearches)/float64(n), "searches/op")
	b.ReportMetric(float64(s.CandidatesExamined)/float64(n), "candidates/op")
	b.ReportMetric(float64(s.PointsReused)/float64(n), "reusedPts/op")
}

// BenchmarkTable1DatasetGen regenerates Table I's dataset battery (scaled).
func BenchmarkTable1DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := data.Table1Synthetic(0.001, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2ClusterCounts measures one S1 row: a single DBSCAN run at
// the Table II parameters on the synthetic fixture.
func BenchmarkTable2ClusterCounts(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := dbscan.Run(fixIdx[70], synthParams, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Indexing is scenario S1: 8 identical variants clustered
// concurrently (no reuse) across leaf occupancies r, against the r=1
// sequential reference measured by the r=1/threads=1 case.
func BenchmarkFig4Indexing(b *testing.B) {
	fixtures(b)
	vs := variant.New(func() []dbscan.Params {
		ps := make([]dbscan.Params, 8)
		for i := range ps {
			ps[i] = synthParams
		}
		return ps
	}())
	for _, cfg := range []struct {
		name    string
		r       int
		threads int
	}{
		{"reference_r1_T1", 1, 1},
		{"r1_T8", 1, 8},
		{"r16_T8", 16, 8},
		{"r70_T8", 70, 8},
		{"r100_T8", 100, 8},
		{"r256_T8", 256, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var m metrics.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := sched.Execute(fixIdx[cfg.r], vs, sched.Options{
					Threads: cfg.threads, DisableReuse: true, Metrics: &m,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			reportWork(b, m.Snapshot(), b.N)
		})
	}
}

// s2BenchVariants is a scaled Table III set: A x B with |V| = 12.
func s2BenchVariants() []variant.Variant {
	return variant.Product([]float64{1.5, 2, 2.5}, []int{4, 8, 16, 32})
}

// BenchmarkFig5ReuseSchemes is scenario S2 on the TEC fixture with T=1:
// the three cluster-reuse schemes against the from-scratch baseline.
func BenchmarkFig5ReuseSchemes(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	b.Run("baseline_noreuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(fixTECIx, vs, sched.Options{Threads: 1, DisableReuse: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, scheme := range reuse.Schemes {
		b.Run(scheme.String(), func(b *testing.B) {
			var m metrics.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Execute(fixTECIx, vs, sched.Options{
					Threads: 1, Scheme: scheme, Metrics: &m,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportWork(b, m.Snapshot(), b.N)
		})
	}
}

// BenchmarkFig6ResponseVsReuse measures the per-variant measurement pass
// that produces Figure 6's scatter (response time and reuse fraction per
// variant under CLUSDENSITY).
func BenchmarkFig6ResponseVsReuse(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	for i := 0; i < b.N; i++ {
		rr, err := sched.Execute(fixTECIx, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity})
		if err != nil {
			b.Fatal(err)
		}
		var sink float64
		for _, r := range rr.Results {
			sink += r.Duration().Seconds() + r.Stats.FractionReused
		}
		_ = sink
	}
}

// BenchmarkFig7aSpeedup compares the reference (sequential, r=1, no reuse)
// against VariantDBSCAN (T=1, r=70, CLUSDENSITY) on the synthetic fixture —
// the Figure 7a quantity.
func BenchmarkFig7aSpeedup(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, v := range vs {
				if _, err := dbscan.Run(fixIdx[1], v.Params, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("variantdbscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(fixIdx[70], vs, sched.Options{
				Threads: 1, Scheme: reuse.ClusDensity,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7bReuseFraction isolates the bookkeeping that yields Figure
// 7b's mean fraction of points reused.
func BenchmarkFig7bReuseFraction(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	for i := 0; i < b.N; i++ {
		rr, err := sched.Execute(fixIdx[70], vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity})
		if err != nil {
			b.Fatal(err)
		}
		if rr.MeanFractionReused() < 0 {
			b.Fatal("impossible")
		}
	}
}

// BenchmarkFig7cQuality measures the per-point Jaccard quality scoring of a
// VariantDBSCAN result against plain DBSCAN (Figure 7c).
func BenchmarkFig7cQuality(b *testing.B) {
	fixtures(b)
	ref, err := dbscan.Run(fixTECIx, tecParams, nil)
	if err != nil {
		b.Fatal(err)
	}
	rr, err := sched.Execute(fixTECIx, variant.New([]dbscan.Params{
		{Eps: tecParams.Eps * 0.8, MinPts: 8}, tecParams,
	}), sched.Options{Threads: 1, Scheme: reuse.ClusDensity})
	if err != nil {
		b.Fatal(err)
	}
	cand := rr.Results[1].Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quality(ref, cand); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4VariantSets measures building the S3 variant sets.
func BenchmarkTable4VariantSets(b *testing.B) {
	var B []int
	for mp := 10; mp <= 100; mp += 5 {
		B = append(B, mp)
	}
	for i := 0; i < b.N; i++ {
		if got := len(variant.Product([]float64{0.2, 0.3, 0.4}, B)); got != 57 {
			b.Fatal("wrong |V|")
		}
	}
}

// BenchmarkFig8Combined is scenario S3: the four scheduling/reuse
// combinations with T=8 on the TEC fixture (|V|=12 scaled set).
func BenchmarkFig8Combined(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	for _, combo := range []struct {
		scheme   reuse.Scheme
		strategy sched.Strategy
	}{
		{reuse.ClusDensity, sched.SchedGreedy},
		{reuse.ClusDensity, sched.SchedMinPts},
		{reuse.ClusPtsSquared, sched.SchedGreedy},
		{reuse.ClusPtsSquared, sched.SchedMinPts},
	} {
		b.Run(combo.scheme.String()+"_"+combo.strategy.String(), func(b *testing.B) {
			var m metrics.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Execute(fixTECIx, vs, sched.Options{
					Threads: 8, Scheme: combo.scheme, Strategy: combo.strategy, Metrics: &m,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportWork(b, m.Snapshot(), b.N)
		})
	}
}

// BenchmarkFig9Makespan measures the makespan bookkeeping of the two
// scheduling heuristics (Figure 9) and reports slowdown over the no-idle
// lower bound.
func BenchmarkFig9Makespan(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	for _, strategy := range sched.Strategies {
		b.Run(strategy.String(), func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				rr, err := sched.Execute(fixTECIx, vs, sched.Options{
					Threads: 8, Scheme: reuse.ClusDensity, Strategy: strategy,
				})
				if err != nil {
					b.Fatal(err)
				}
				slow += rr.SlowdownOverLowerBound()
			}
			b.ReportMetric(slow/float64(b.N)*100, "slowdown%")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationSingleTree removes the two-tree design: the cluster-MBB
// sweep runs on the low-resolution tree instead of T_high, inflating the
// candidate filtering cost of every reuse pass.
func BenchmarkAblationSingleTree(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	single := &dbscan.Index{
		Pts: fixTECIx.Pts, Fwd: fixTECIx.Fwd,
		TLow: fixTECIx.TLow, THigh: fixTECIx.TLow,
	}
	b.Run("two-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(fixTECIx, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-tree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(single, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBulkVsInsert compares the grid-sorted bulk loader
// against one-at-a-time insertion with quadratic splits.
func BenchmarkAblationBulkVsInsert(b *testing.B) {
	fixtures(b)
	pts := fixSynth.Points[:10_000]
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 70, SkipHigh: true})
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := rtree.New(rtree.Options{})
			for _, p := range pts {
				tr.Insert(p)
			}
		}
	})
}

// BenchmarkAblationOPTICSvsVariants compares OPTICS (one run, extract per
// ε) against VariantDBSCAN for an ε-sweep at fixed minpts — the related
// work trade-off discussed in §III.
func BenchmarkAblationOPTICSvsVariants(b *testing.B) {
	fixtures(b)
	epsSweep := []float64{1, 1.5, 2, 2.5}
	b.Run("optics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ord, err := optics.Run(fixTECIx, 2.5, 4, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, eps := range epsSweep {
				if _, err := ord.ExtractDBSCAN(eps); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("variantdbscan", func(b *testing.B) {
		var ps []dbscan.Params
		for _, eps := range epsSweep {
			ps = append(ps, dbscan.Params{Eps: eps, MinPts: 4})
		}
		vs := variant.New(ps)
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(fixTECIx, vs, sched.Options{Threads: 1, Scheme: reuse.ClusDensity}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationUnionFind compares the disjoint-set DBSCAN baseline
// (Patwary et al.) with the expansion-based implementation.
func BenchmarkAblationUnionFind(b *testing.B) {
	fixtures(b)
	b.Run("expansion", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.Run(fixTECIx, tecParams, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unionfind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.RunDisjointSet(fixTECIx, tecParams, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNeighborSearch isolates Algorithm 2 at the paper's r values.
func BenchmarkNeighborSearch(b *testing.B) {
	fixtures(b)
	for _, r := range []int{1, 70, 256} {
		ix := fixIdx[r]
		b.Run(map[int]string{1: "r1", 70: "r70", 256: "r256"}[r], func(b *testing.B) {
			var buf []int32
			for i := 0; i < b.N; i++ {
				p := ix.Pts[i%len(ix.Pts)]
				buf = ix.NeighborSearch(p, synthParams.Eps, nil, buf[:0])
			}
		})
	}
}

// BenchmarkAblationSeedFilter measures the getSeedList selection criterion:
// excluding tiny clusters from reuse (their sweep can cost more than it
// saves) versus reusing every cluster.
func BenchmarkAblationSeedFilter(b *testing.B) {
	fixtures(b)
	vs := s2BenchVariants()
	for _, minSize := range []int{0, 16, 64, 256} {
		b.Run(map[int]string{0: "all", 16: "min16", 64: "min64", 256: "min256"}[minSize], func(b *testing.B) {
			var m metrics.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sched.Execute(fixTECIx, vs, sched.Options{
					Threads: 1, Scheme: reuse.ClusDensity, MinSeedSize: minSize, Metrics: &m,
				}); err != nil {
					b.Fatal(err)
				}
			}
			reportWork(b, m.Snapshot(), b.N)
		})
	}
}

// BenchmarkAblationIntraVsVariantParallel contrasts the two parallelism
// granularities (§III vs §IV): parallelizing the range queries inside one
// DBSCAN run (master/worker, Arlia & Coppola) versus running whole variants
// concurrently with reuse (VariantDBSCAN). The workload is the same
// 4-variant eps sweep either way.
func BenchmarkAblationIntraVsVariantParallel(b *testing.B) {
	fixtures(b)
	ps := []dbscan.Params{
		{Eps: 1, MinPts: 4}, {Eps: 1.5, MinPts: 4}, {Eps: 2, MinPts: 4}, {Eps: 2.5, MinPts: 4},
	}
	b.Run("intra-variant", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range ps {
				if _, err := dbscan.RunParallel(fixTECIx, p, 8, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("variant-level", func(b *testing.B) {
		vs := variant.New(ps)
		for i := 0; i < b.N; i++ {
			if _, err := sched.Execute(fixTECIx, vs, sched.Options{
				Threads: 8, Scheme: reuse.ClusDensity,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationIncrementalVsBatch contrasts maintaining a clustering
// under streaming inserts (IncrementalDBSCAN) with re-clustering from
// scratch after every batch — the monitoring-loop trade-off.
func BenchmarkAblationIncrementalVsBatch(b *testing.B) {
	fixtures(b)
	stream := fixTEC.Points[:6000]
	p := dbscan.Params{Eps: 1.5, MinPts: 4}
	const batch = 250
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c, err := incremental.New(p, nil)
			if err != nil {
				b.Fatal(err)
			}
			for off := 0; off < len(stream); off += batch {
				c.InsertBatch(stream[off : off+batch])
				if c.Labels().Len() == 0 {
					b.Fatal("no labels")
				}
			}
		}
	})
	b.Run("recluster", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for off := batch; off <= len(stream); off += batch {
				ix := dbscan.BuildIndex(stream[:off], dbscan.IndexOptions{R: 70, SkipHigh: true})
				if _, err := dbscan.Run(ix, p, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkKDistSuggest measures the sorted 4-dist heuristic (ε selection).
func BenchmarkKDistSuggest(b *testing.B) {
	fixtures(b)
	small := dbscan.BuildIndex(fixSynth.Points[:5000], dbscan.IndexOptions{R: 70})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kdist.SuggestEps(small, kdist.DefaultMinPts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTDBSCAN measures spatiotemporal clustering over stacked frames.
func BenchmarkSTDBSCAN(b *testing.B) {
	fixtures(b)
	pts := make([]stdbscan.Point, 0, 10000)
	for i, p := range fixTEC.Points[:10000] {
		pts = append(pts, stdbscan.Point{X: p.X, Y: p.Y, T: float64(i % 5)})
	}
	ix := stdbscan.BuildIndex(pts, 70)
	p := stdbscan.Params{Eps1: 2, Eps2: 1.5, MinPts: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stdbscan.Run(ix, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracking measures frame-to-frame feature linking.
func BenchmarkTracking(b *testing.B) {
	fixtures(b)
	ix := fixTECIx
	res, err := dbscan.Run(ix, tecParams, nil)
	if err != nil {
		b.Fatal(err)
	}
	features := track.Extract(ix.Pts, res, 0, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := track.NewTracker(5, 1)
		for f := 0; f < 10; f++ {
			shifted := make([]track.Feature, len(features))
			copy(shifted, features)
			for j := range shifted {
				shifted[j].Time = float64(f)
				shifted[j].Centroid.X += float64(f)
			}
			tr.Advance(shifted)
		}
		if len(tr.All()) == 0 {
			b.Fatal("no tracks")
		}
	}
}

// BenchmarkAblationGridVsRTree contrasts the ε-specific uniform grid with
// the variant-agnostic packed R-tree: one DBSCAN run each (the grid is at
// its best — cell side exactly ε), then a 3-ε sweep where the grid must
// either rebuild per ε or run with oversized cells.
func BenchmarkAblationGridVsRTree(b *testing.B) {
	fixtures(b)
	pts := fixTEC.Points
	b.Run("single-eps/grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gix, err := gridindex.Build(pts, tecParams.Eps)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gridindex.Run(gix, tecParams.Eps, tecParams.MinPts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-eps/rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 70, SkipHigh: true})
			if _, err := dbscan.Run(ix, tecParams, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	sweep := []float64{1, 1.5, 2, 2.5}
	b.Run("eps-sweep/grid-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, e := range sweep {
				gix, err := gridindex.Build(pts, e)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := gridindex.Run(gix, e, 4, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("eps-sweep/rtree-shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 70, SkipHigh: true})
			for _, e := range sweep {
				if _, err := dbscan.Run(ix, dbscan.Params{Eps: e, MinPts: 4}, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkIndexShootout runs one DBSCAN variant over every neighbor-search
// substrate in the repository: brute force, TI-DBSCAN (triangle-inequality
// window), uniform grid, and the paper's packed R-tree (build + run,
// since the structures have very different construction costs).
func BenchmarkIndexShootout(b *testing.B) {
	fixtures(b)
	pts := fixTEC.Points[:10000]
	p := dbscan.Params{Eps: 2, MinPts: 4}
	b.Run("bruteforce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.RunBruteForce(pts, p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tidbscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := tidbscan.Build(pts)
			if _, err := tidbscan.Run(ix, p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gix, err := gridindex.Build(pts, p.Eps)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := gridindex.Run(gix, p.Eps, p.MinPts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rtree-r70", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 70, SkipHigh: true})
			if _, err := dbscan.Run(ix, p, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationApproxDBSCAN measures the ρ-approximation knob: exact
// DBSCAN against rho-approximate runs at loosening slack.
func BenchmarkAblationApproxDBSCAN(b *testing.B) {
	fixtures(b)
	pts := fixTEC.Points[:10000]
	b.Run("exact-rtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := dbscan.BuildIndex(pts, dbscan.IndexOptions{R: 70, SkipHigh: true})
			if _, err := dbscan.Run(ix, dbscan.Params{Eps: 2, MinPts: 4}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, rho := range []float64{0.05, 0.2, 0.5} {
		b.Run(map[float64]string{0.05: "rho0.05", 0.2: "rho0.2", 0.5: "rho0.5"}[rho], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := approx.Run(pts, approx.Params{Eps: 2, MinPts: 4, Rho: rho}, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Intra-variant parallelism (union-find DBSCAN + two-level scheduling) ---

// The big fixture exists so BenchmarkRunParallel has enough work per phase
// for the chunk cursor and per-worker metric batching to matter.
var (
	fixBigOnce  sync.Once
	fixBigIx    *dbscan.Index
	fixBigPtrIx *dbscan.Index // same fixture, pointer-tree searches (NoFlat)
)

func bigFixture(b *testing.B) *dbscan.Index {
	b.Helper()
	fixBigOnce.Do(func() {
		ds, err := data.Generate(data.SynthConfig{
			Class: data.ClassCF, N: 100_000, NoiseFrac: 0.15, Seed: 0xB16F1,
		})
		if err != nil {
			panic(err)
		}
		fixBigIx = dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: 70})
		fixBigPtrIx = dbscan.BuildIndex(ds.Points, dbscan.IndexOptions{R: 70, NoFlat: true})
	})
	return fixBigIx
}

// BenchmarkRunParallel measures intra-variant DBSCAN at increasing worker
// counts against the sequential expansion baseline on a 100k-point fixture.
// Speedup beyond workers=1 requires GOMAXPROCS > 1; on a single core the
// interesting quantity is the parallel algorithm's overhead over Run.
func BenchmarkRunParallel(b *testing.B) {
	ix := bigFixture(b)
	// ε=1 keeps the retained core neighborhoods (the disjoint-set
	// formulation's memory cost) in the tens of megabytes at n=100k.
	p := dbscan.Params{Eps: 1, MinPts: 4}
	b.Run("sequential", func(b *testing.B) {
		var m metrics.Counters
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dbscan.Run(ix, p, &m); err != nil {
				b.Fatal(err)
			}
		}
		reportWork(b, m.Snapshot(), b.N)
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			var m metrics.Counters
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dbscan.RunParallel(ix, p, w, &m); err != nil {
					b.Fatal(err)
				}
			}
			reportWork(b, m.Snapshot(), b.N)
		})
	}
}

// BenchmarkRunTiled sweeps tile-level parallelism on the 100k fixture
// rebuilt grid-kind: the tiled runner (variant → tile → chunk) at 2×2,
// 4×4, and 8×8 tiles against the untiled chunked runner (tiles=1), both
// over the same frozen grid. Labels are byte-identical at every point of
// the sweep; only the work partitioning differs.
func BenchmarkRunTiled(b *testing.B) {
	bigFixture(b)
	gix := dbscan.BuildIndex(fixBigIx.Pts, dbscan.IndexOptions{R: 70, Kind: dbscan.IndexGrid})
	p := dbscan.Params{Eps: 1, MinPts: 4}
	if err := gix.EnsureGrid(p.Eps); err != nil {
		b.Fatal(err)
	}
	for _, tiles := range []int{1, 4, 16, 64} {
		for _, w := range []int{4, 8} {
			b.Run(fmt.Sprintf("tiles%d/workers%d", tiles, w), func(b *testing.B) {
				var m metrics.Counters
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, err := dbscan.RunParallelOpts(context.Background(), gix, p, dbscan.ParallelOptions{
						Workers: w, Tiles: tiles,
					}, &m)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportWork(b, m.Snapshot(), b.N)
			})
		}
	}
}

// BenchmarkIndexLayout compares the flat (frozen SoA) and pointer index
// layouts on the 100k BenchmarkRunParallel fixture — the index-layout
// tentpole's headline measurement. Both produce byte-identical labels;
// only memory behavior of the ε-search differs.
func BenchmarkIndexLayout(b *testing.B) {
	bigFixture(b)
	p := dbscan.Params{Eps: 1, MinPts: 4}
	for _, cfg := range []struct {
		name string
		ix   *dbscan.Index
	}{{"flat", fixBigIx}, {"pointer", fixBigPtrIx}} {
		b.Run(cfg.name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dbscan.Run(cfg.ix, p, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, w := range []int{4, 8} {
			b.Run(fmt.Sprintf("%s/workers%d", cfg.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := dbscan.RunParallel(cfg.ix, p, w, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTwoLevelSingleVariant is the |V| < T regime: one variant on an
// 8-worker pool. The paper's one-variant-per-worker scheduler leaves 7
// workers idle; donation routes them into the variant's parallel phases.
func BenchmarkTwoLevelSingleVariant(b *testing.B) {
	fixtures(b)
	vs := variant.New([]dbscan.Params{tecParams})
	for _, cfg := range []struct {
		name string
		opt  sched.Options
	}{
		{"variant-only", sched.Options{Threads: 8}},
		{"two-level", sched.Options{Threads: 8, DonateIdle: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Execute(fixTECIx, vs, cfg.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTwoLevelTailSkew is the end-of-run tail: three cheap variants and
// one expensive one on a 4-worker pool, all from scratch. Without donation
// the makespan is the slow variant alone; with it, finished workers join in.
func BenchmarkTwoLevelTailSkew(b *testing.B) {
	fixtures(b)
	vs := variant.New([]dbscan.Params{
		{Eps: 0.5, MinPts: 8}, {Eps: 0.5, MinPts: 16}, {Eps: 0.5, MinPts: 32},
		{Eps: 4, MinPts: 4}, // the tail: far larger ε-neighborhoods
	})
	for _, cfg := range []struct {
		name string
		opt  sched.Options
	}{
		{"variant-only", sched.Options{Threads: 4, DisableReuse: true}},
		{"two-level", sched.Options{Threads: 4, DisableReuse: true, DonateIdle: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sched.Execute(fixTECIx, vs, cfg.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
